#include "baseline/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baseline/rtree_node.h"
#include "geo/distance.h"

namespace tklus {

namespace {

double Area(const BoundingBox& box) {
  const double lat_span = std::max(0.0, box.max_lat - box.min_lat);
  const double lon_span = std::max(0.0, box.max_lon - box.min_lon);
  return lat_span * lon_span;
}

BoundingBox Extend(const BoundingBox& box, const GeoPoint& p) {
  BoundingBox out = box;
  out.min_lat = std::min(out.min_lat, p.lat);
  out.max_lat = std::max(out.max_lat, p.lat);
  out.min_lon = std::min(out.min_lon, p.lon);
  out.max_lon = std::max(out.max_lon, p.lon);
  return out;
}

bool EmptyBox(const BoundingBox& box) {
  return box.min_lat > box.max_lat || box.min_lon > box.max_lon;
}

double Enlargement(const BoundingBox& box, const GeoPoint& p) {
  if (EmptyBox(box)) return 0.0;
  return Area(Extend(box, p)) - Area(box);
}

}  // namespace

RTree::RTree(int max_entries)
    : root_(std::make_unique<Node>()), max_entries_(std::max(4, max_entries)) {}

RTree::~RTree() = default;

RTree::Node* RTree::ChooseLeaf(Node* node, const GeoPoint& point) const {
  while (!node->is_leaf) {
    Node* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (const auto& child : node->children) {
      const double enlargement = Enlargement(child->mbr, point);
      const double area = Area(child->mbr);
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = child.get();
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = best;
  }
  return node;
}

void RTree::Insert(const GeoPoint& point, uint64_t id) {
  Node* leaf = ChooseLeaf(root_.get(), point);
  leaf->entries.push_back(Entry{point, id});
  leaf->GrowMbr(point);
  ++size_;
  if (static_cast<int>(leaf->entries.size()) > max_entries_) {
    SplitNode(leaf);
  } else {
    AdjustUpward(leaf->parent);
  }
}

void RTree::AdjustUpward(Node* node) {
  while (node != nullptr) {
    BoundingBox box{90.0, -90.0, 180.0, -180.0};
    Node wrapper;
    wrapper.mbr = box;
    for (const auto& child : node->children) {
      wrapper.GrowMbr(child->mbr);
    }
    node->mbr = wrapper.mbr;
    node = node->parent;
  }
}

void RTree::SplitNode(Node* node) {
  while (true) {
    // Collect the items to redistribute.
    const bool leaf = node->is_leaf;
    auto new_node = std::make_unique<Node>();
    new_node->is_leaf = leaf;

    if (leaf) {
      // Quadratic split on point entries: pick the two seeds wasting the
      // most area, then assign by least enlargement.
      auto& items = node->entries;
      size_t seed_a = 0, seed_b = 1;
      double worst = -1.0;
      for (size_t i = 0; i < items.size(); ++i) {
        for (size_t j = i + 1; j < items.size(); ++j) {
          BoundingBox pair_box{90.0, -90.0, 180.0, -180.0};
          pair_box = Extend(pair_box, items[i].point);
          pair_box = Extend(pair_box, items[j].point);
          const double waste = Area(pair_box);
          if (waste > worst) {
            worst = waste;
            seed_a = i;
            seed_b = j;
          }
        }
      }
      std::vector<Entry> all = std::move(items);
      items.clear();
      node->mbr = BoundingBox{90.0, -90.0, 180.0, -180.0};
      new_node->mbr = BoundingBox{90.0, -90.0, 180.0, -180.0};
      node->entries.push_back(all[seed_a]);
      node->GrowMbr(all[seed_a].point);
      new_node->entries.push_back(all[seed_b]);
      new_node->GrowMbr(all[seed_b].point);
      for (size_t i = 0; i < all.size(); ++i) {
        if (i == seed_a || i == seed_b) continue;
        const double grow_old = Enlargement(node->mbr, all[i].point);
        const double grow_new = Enlargement(new_node->mbr, all[i].point);
        Node* target =
            grow_old <= grow_new ? node : new_node.get();
        // Keep sizes balanced enough to respect min fill.
        if (node->entries.size() > all.size() - max_entries_ / 2) {
          target = new_node.get();
        } else if (new_node->entries.size() > all.size() - max_entries_ / 2) {
          target = node;
        }
        target->entries.push_back(all[i]);
        target->GrowMbr(all[i].point);
      }
    } else {
      // Internal split: same quadratic strategy over child MBR centers.
      auto all = std::move(node->children);
      node->children.clear();
      size_t seed_a = 0, seed_b = 1;
      double worst = -1.0;
      for (size_t i = 0; i < all.size(); ++i) {
        for (size_t j = i + 1; j < all.size(); ++j) {
          const BoundingBox combined = all[i]->mbr.Union(all[j]->mbr);
          const double waste = Area(combined);
          if (waste > worst) {
            worst = waste;
            seed_a = i;
            seed_b = j;
          }
        }
      }
      node->mbr = BoundingBox{90.0, -90.0, 180.0, -180.0};
      new_node->mbr = BoundingBox{90.0, -90.0, 180.0, -180.0};
      // Move seeds first (order matters: move higher index first).
      std::vector<std::unique_ptr<Node>> rest;
      for (size_t i = 0; i < all.size(); ++i) {
        if (i == seed_a) {
          all[i]->parent = node;
          node->GrowMbr(all[i]->mbr);
          node->children.push_back(std::move(all[i]));
        } else if (i == seed_b) {
          all[i]->parent = new_node.get();
          new_node->GrowMbr(all[i]->mbr);
          new_node->children.push_back(std::move(all[i]));
        } else {
          rest.push_back(std::move(all[i]));
        }
      }
      for (auto& child : rest) {
        const double area_old = Area(node->mbr.Union(child->mbr)) -
                                Area(node->mbr);
        const double area_new = Area(new_node->mbr.Union(child->mbr)) -
                                Area(new_node->mbr);
        Node* target = area_old <= area_new ? node : new_node.get();
        if (node->children.size() >
            rest.size() + 2 - static_cast<size_t>(max_entries_ / 2)) {
          target = new_node.get();
        } else if (new_node->children.size() >
                   rest.size() + 2 - static_cast<size_t>(max_entries_ / 2)) {
          target = node;
        }
        child->parent = target;
        target->GrowMbr(child->mbr);
        target->children.push_back(std::move(child));
      }
    }

    Node* parent = node->parent;
    if (parent == nullptr) {
      // Grow a new root.
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      auto old_root = std::move(root_);
      old_root->parent = new_root.get();
      new_node->parent = new_root.get();
      new_root->GrowMbr(old_root->mbr);
      new_root->GrowMbr(new_node->mbr);
      new_root->children.push_back(std::move(old_root));
      new_root->children.push_back(std::move(new_node));
      root_ = std::move(new_root);
      return;
    }
    new_node->parent = parent;
    parent->GrowMbr(new_node->mbr);
    parent->children.push_back(std::move(new_node));
    AdjustUpward(parent);
    if (static_cast<int>(parent->children.size()) <= max_entries_) {
      return;
    }
    node = parent;  // propagate the split upward
  }
}

std::vector<RTree::Entry> RTree::RangeQuery(const GeoPoint& center,
                                            double radius_km) const {
  std::vector<Entry> out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (EmptyBox(node->mbr) ||
        MinDistanceKm(node->mbr, center) > radius_km) {
      continue;
    }
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        if (EuclideanKm(e.point, center) <= radius_km) out.push_back(e);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return out;
}

int RTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

size_t RTree::node_count() const {
  size_t count = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return count;
}

bool RTree::CheckInvariants() const {
  int leaf_depth = -1;
  bool ok = true;
  struct Frame {
    const Node* node;
    int depth;
  };
  std::vector<Frame> stack{{root_.get(), 0}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      if (depth != leaf_depth) ok = false;
      for (const Entry& e : node->entries) {
        if (!node->mbr.Contains(e.point)) ok = false;
      }
    } else {
      if (node->children.empty()) ok = false;
      for (const auto& child : node->children) {
        if (child->parent != node) ok = false;
        if (!EmptyBox(child->mbr)) {
          if (child->mbr.min_lat < node->mbr.min_lat - 1e-12 ||
              child->mbr.max_lat > node->mbr.max_lat + 1e-12 ||
              child->mbr.min_lon < node->mbr.min_lon - 1e-12 ||
              child->mbr.max_lon > node->mbr.max_lon + 1e-12) {
            ok = false;
          }
        }
        stack.push_back({child.get(), depth + 1});
      }
    }
  }
  return ok;
}

}  // namespace tklus
