#ifndef TKLUS_TOOLS_ANALYZE_RULES_H_
#define TKLUS_TOOLS_ANALYZE_RULES_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/source_model.h"
#include "analyze/summaries.h"

namespace tklus::analyze {

struct ProgramModel;

// One finding. `rule` is the rule's stable name (what --selftest keys on
// and what a suppression would reference); `path` is relative to the scan
// root.
struct Diagnostic {
  std::string rule;
  std::string path;
  int line;
  std::string message;
};

// The declared lock-order DAG plus the io-under-lock symbol list, loaded
// from tools/analyze/lockorder.conf (cycle-checked at load, like
// layers.conf). Lock declarations are scoped to a path suffix so a
// `mu_` member in core/engine.cc and an unrelated `mu_` in another
// class never alias.
struct LockOrderConfig {
  bool loaded = false;
  struct LockDecl {
    std::string name;   // the guarded member, e.g. "append_mu_"
    std::string scope;  // path suffix the declaration applies to; "" = any
  };
  std::vector<LockDecl> locks;
  // Transitive closure of the declared `order` chains: can_precede[a]
  // holds every lock that may be acquired while `a` is held.
  std::map<std::string, std::set<std::string>> can_precede;
  // Blocking call names (fsync, pwrite, Append, ...) banned while a lock
  // listed in `io_locks` is held in any mode — the fsync-before-ack
  // design keeps every blocking syscall off the engine lock entirely.
  std::set<std::string> io_symbols;
  std::set<std::string> io_locks;

  // True if `member` in `path` matches a declared lock.
  bool IsDeclared(const std::string& member, std::string_view path) const {
    for (const LockDecl& decl : locks) {
      if (decl.name == member &&
          (decl.scope.empty() || PathEndsWith(path, decl.scope))) {
        return true;
      }
    }
    return false;
  }
  bool CanPrecede(const std::string& held, const std::string& next) const {
    const auto it = can_precede.find(held);
    return it != can_precede.end() && it->second.count(next) > 0;
  }
};

// Shared inputs every rule sees: the layering manifest (module ->
// modules it may include from) and the lock-order manifest.
// `has_manifest` distinguishes "no manifest found" from "manifest with
// no edges" — the layering rule reports cross-module includes as errors
// in the former case rather than silently passing; the lock-order rule
// treats nested acquisitions the same way when lockorder.conf is absent.
struct AnalyzerContext {
  std::map<std::string, std::set<std::string>> allowed_deps;
  bool has_manifest = false;
  LockOrderConfig lockorder;
  // The cross-TU program model (analyze/callgraph.h), built once after
  // every file is lexed and modeled; null in unit tests that drive a
  // single rule without the interprocedural phase — the rules that read
  // it no-op then.
  const ProgramModel* program = nullptr;
  HotPathConfig hotpath;
  // Registered rule names, for suppression validation. Empty in
  // single-rule unit tests; the unknown-rule check is skipped then.
  std::set<std::string> rule_names;
};

// A domain-invariant check over one file's lexical model. Rules must be
// pure (no state across files) so scan order never changes the outcome.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void Check(const SourceFile& file, const AnalyzerContext& ctx,
                     std::vector<Diagnostic>* out) const = 0;
};

// The full registered rule set, in reporting order.
std::vector<std::unique_ptr<Rule>> BuildRuleSet();

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_RULES_H_
