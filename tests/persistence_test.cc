#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/engine.h"
#include "datagen/tweet_generator.h"
#include "dfs/dfs.h"
#include "geo/geohash.h"
#include "index/hybrid_index.h"
#include "storage/metadata_db.h"

namespace tklus {
namespace {

using datagen::TweetGenerator;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tklus_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, DfsSaveLoadRoundTrip) {
  SimulatedDfs::Options opts;
  opts.block_size = 16;
  opts.num_data_nodes = 2;
  SimulatedDfs dfs(opts);
  ASSERT_TRUE(dfs.Append("a/one", "hello world, this spans blocks").ok());
  ASSERT_TRUE(dfs.Append("b/two", "short").ok());
  ASSERT_TRUE(dfs.Append("a/one", " plus a tail").ok());

  std::stringstream buffer;
  ASSERT_TRUE(dfs.Save(buffer).ok());

  SimulatedDfs restored;
  ASSERT_TRUE(restored.Load(buffer).ok());
  EXPECT_EQ(restored.options().block_size, 16u);
  EXPECT_EQ(restored.options().num_data_nodes, 2);
  EXPECT_EQ(restored.file_count(), 2u);
  auto one = restored.ReadAll("a/one");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, "hello world, this spans blocks plus a tail");
  auto two = restored.ReadAll("b/two");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(*two, "short");
  EXPECT_EQ(restored.total_bytes(), dfs.total_bytes());
}

TEST_F(PersistenceTest, DfsLoadRejectsGarbage) {
  std::stringstream buffer("this is not a dfs image at all");
  SimulatedDfs dfs;
  EXPECT_FALSE(dfs.Load(buffer).ok());
}

TEST_F(PersistenceTest, MetadataDbReopen) {
  const std::string path = Path("meta.db");
  {
    auto db = MetadataDb::Create(path);
    ASSERT_TRUE(db.ok());
    for (int64_t sid = 1; sid <= 2000; ++sid) {
      const int64_t rsid = sid > 10 && sid % 3 == 0 ? sid / 2 : -1;
      ASSERT_TRUE((*db)
                      ->Insert(TweetMeta{sid, sid % 97, 1.0 * (sid % 90),
                                         1.0 * (sid % 180),
                                         rsid == -1 ? -1 : int64_t{1}, rsid})
                      .ok());
    }
    ASSERT_TRUE((*db)->FlushAll().ok());
  }
  auto db = MetadataDb::Open(path);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->row_count(), 2000u);
  auto row = (*db)->SelectBySid(1234);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_EQ(row->value().uid, 1234 % 97);
  // rsid index survived: sid 1000 is rsid of sids 2000? find replies of 500.
  auto replies = (*db)->SelectByRsid(500);
  ASSERT_TRUE(replies.ok());
  // sid 1000 (sid%3!=0? 1000%3=1) — count by recomputing expectation.
  size_t expected = 0;
  for (int64_t sid = 11; sid <= 2000; ++sid) {
    if (sid % 3 == 0 && sid / 2 == 500) ++expected;
  }
  EXPECT_EQ(replies->size(), expected);
}

TEST_F(PersistenceTest, MetadataDbOpenRejectsBadFile) {
  {
    std::ofstream out(Path("garbage.db"), std::ios::binary);
    out << std::string(kPageSize, 'x');
  }
  EXPECT_FALSE(MetadataDb::Open(Path("garbage.db")).ok());
  EXPECT_FALSE(MetadataDb::Open(Path("missing.db")).ok());
}

TEST_F(PersistenceTest, HybridIndexSaveOpenRoundTrip) {
  Dataset ds;
  Post p;
  p.sid = 1;
  p.uid = 1;
  p.location = GeoPoint{43.68, -79.37};
  p.text = "hotel by the lake";
  ds.Add(p);
  p.sid = 2;
  p.text = "another hotel uptown";
  ds.Add(p);

  SimulatedDfs dfs;
  auto built = HybridIndex::Build(ds, &dfs, HybridIndex::Options{});
  ASSERT_TRUE(built.ok());
  std::stringstream buffer;
  ASSERT_TRUE((*built)->Save(buffer).ok());

  auto opened = HybridIndex::Open(&dfs, buffer);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->geohash_length(), 4);
  EXPECT_EQ((*opened)->forward_index().size(),
            (*built)->forward_index().size());
  const std::string cell = geohash::Encode(GeoPoint{43.68, -79.37}, 4);
  auto postings = (*opened)->FetchPostings(cell, "hotel");
  ASSERT_TRUE(postings.ok());
  EXPECT_EQ(postings->size(), 2u);
}

TEST_F(PersistenceTest, EngineSaveOpenIdenticalResults) {
  TweetGenerator::Options gen;
  gen.num_users = 250;
  gen.num_tweets = 6000;
  gen.num_cities = 4;
  const auto corpus = TweetGenerator::Generate(gen);

  std::vector<TkLusQuery> queries;
  for (const char* kw : {"hotel", "restaurant", "cafe"}) {
    TkLusQuery q;
    q.location = corpus.city_centers[0];
    q.radius_km = 15.0;
    q.keywords = {kw};
    q.k = 10;
    queries.push_back(q);
    q.ranking = Ranking::kMax;
    queries.push_back(q);
  }

  std::vector<QueryResult> before;
  uint64_t built_inverted_bytes = 0;
  {
    auto engine = TkLusEngine::Build(corpus.dataset);
    ASSERT_TRUE(engine.ok());
    for (const TkLusQuery& q : queries) {
      auto r = (*engine)->Query(q);
      ASSERT_TRUE(r.ok());
      before.push_back(*std::move(r));
    }
    built_inverted_bytes = (*engine)->index().build_stats().inverted_bytes;
    ASSERT_TRUE((*engine)->Save(Path("saved")).ok());
  }

  auto reopened = TkLusEngine::Open(Path("saved"));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->index().build_stats().inverted_bytes,
            built_inverted_bytes);
  EXPECT_GT((*reopened)->vocabulary().size(), 0u);
  EXPECT_GT((*reopened)->bounds().global_bound(), 0.0);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = (*reopened)->Query(queries[i]);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->users.size(), before[i].users.size()) << "query " << i;
    for (size_t j = 0; j < r->users.size(); ++j) {
      EXPECT_EQ(r->users[j].uid, before[i].users[j].uid);
      EXPECT_NEAR(r->users[j].score, before[i].users[j].score, 1e-12);
    }
  }
}

TEST_F(PersistenceTest, OpenedEngineKeepsScoringOptions) {
  TweetGenerator::Options gen;
  gen.num_users = 100;
  gen.num_tweets = 2000;
  gen.num_cities = 2;
  const auto corpus = TweetGenerator::Generate(gen);
  {
    TkLusEngine::Options opts;
    opts.scoring.alpha = 0.7;
    opts.scoring.n_norm = 11.0;
    opts.thread_depth = 4;
    auto engine = TkLusEngine::Build(corpus.dataset, opts);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(Path("saved")).ok());
  }
  auto reopened = TkLusEngine::Open(Path("saved"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_DOUBLE_EQ((*reopened)->options().scoring.alpha, 0.7);
  EXPECT_DOUBLE_EQ((*reopened)->options().scoring.n_norm, 11.0);
  EXPECT_EQ((*reopened)->options().thread_depth, 4);
}

TEST_F(PersistenceTest, OpenMissingDirectoryFails) {
  EXPECT_FALSE(TkLusEngine::Open(Path("nonexistent")).ok());
}

// ------------------------------------------------ corruption round-trips

class CorruptionTest : public PersistenceTest {
 protected:
  // Builds and saves a small engine into dir_/saved, once per test.
  void SaveEngine() {
    TweetGenerator::Options gen;
    gen.num_users = 80;
    gen.num_tweets = 1500;
    gen.num_cities = 2;
    const auto corpus = TweetGenerator::Generate(gen);
    auto engine = TkLusEngine::Build(corpus.dataset);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(Path("saved")).ok());
    ASSERT_TRUE(TkLusEngine::Open(Path("saved")).ok());  // sanity
  }

  // XORs one byte of `file` at `offset` (from the start; negative counts
  // from the end).
  void FlipByte(const std::string& file, int64_t offset) {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open()) << file;
    f.seekg(0, std::ios::end);
    const int64_t size = static_cast<int64_t>(f.tellg());
    const int64_t pos = offset >= 0 ? offset : size + offset;
    ASSERT_GE(pos, 0);
    ASSERT_LT(pos, size);
    f.seekg(pos);
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x20;
    f.seekp(pos);
    f.write(&byte, 1);
  }
};

TEST_F(CorruptionTest, FlippedByteInEngineImageIsCorruption) {
  SaveEngine();
  FlipByte(Path("saved") + "/engine.bin", 100);
  auto reopened = TkLusEngine::Open(Path("saved"));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, FlippedByteInIndexImageIsCorruption) {
  SaveEngine();
  FlipByte(Path("saved") + "/index.bin", 64);
  auto reopened = TkLusEngine::Open(Path("saved"));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, FlippedByteInDfsImageIsCorruption) {
  SaveEngine();
  FlipByte(Path("saved") + "/dfs.bin", 256);
  auto reopened = TkLusEngine::Open(Path("saved"));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, FlippedFooterByteIsCorruption) {
  // Damage to the checksum itself (the footer) must also be detected.
  SaveEngine();
  FlipByte(Path("saved") + "/engine.bin", -4);
  auto reopened = TkLusEngine::Open(Path("saved"));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, FlippedByteInMetadataPageIsCorruption) {
  // Page 0 (the database header) is read during Open; its CRC, kept in the
  // meta.db.crc sidecar, no longer matches.
  SaveEngine();
  FlipByte(Path("saved") + "/meta.db", 200);
  auto reopened = TkLusEngine::Open(Path("saved"));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, DamagedChecksumSidecarIsDetected) {
  SaveEngine();
  // The page-CRC sidecar travels inside the meta.db checkpoint blob; its
  // bytes sit near the end (after the DB image). Damage there must be
  // caught by the blob's footer CRC before any page is trusted.
  FlipByte(Path("saved") + "/meta.db", -24);  // inside the sidecar region
  auto reopened = TkLusEngine::Open(Path("saved"));
  EXPECT_FALSE(reopened.ok());
}

TEST_F(CorruptionTest, TruncatedArtifactIsCorruption) {
  SaveEngine();
  const std::string file = Path("saved") + "/index.bin";
  const auto size = std::filesystem::file_size(file);
  std::filesystem::resize_file(file, size / 2);
  auto reopened = TkLusEngine::Open(Path("saved"));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tklus
