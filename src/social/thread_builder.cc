#include "social/thread_builder.h"

#include <algorithm>

namespace tklus {

double ThreadPopularity(const ThreadShape& shape, double epsilon) {
  if (shape.height() <= 1) return epsilon;
  double popularity = 0.0;
  for (int i = 2; i <= shape.height(); ++i) {
    popularity += static_cast<double>(shape.level_sizes[i - 1]) / i;
  }
  return popularity;
}

Result<ThreadShape> ThreadBuilder::BuildShape(TweetId root_sid) {
  ThreadShape shape;
  shape.level_sizes.push_back(1);
  std::vector<TweetId> frontier{root_sid};
  for (int depth = 1; depth < options_.max_depth; ++depth) {
    std::vector<TweetId> next;
    for (const TweetId sid : frontier) {
      if (db_ != nullptr) {
        // Alg. 1 line 7: "select all where rsid equals to Id" — the I/O step.
        Result<std::vector<TweetMeta>> replies = db_->SelectByRsid(sid);
        if (!replies.ok()) return replies.status();
        for (const TweetMeta& reply : *replies) {
          next.push_back(reply.sid);
        }
      }
      if (extra_children_) extra_children_(sid, &next);
    }
    if (extra_children_) {
      // A reply can surface from both sources during crash-recovery
      // windows (row already folded into the DB, post still resident in
      // the delta); each level counts a sid once.
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
    }
    if (next.empty()) break;
    shape.level_sizes.push_back(next.size());
    frontier = std::move(next);
  }
  return shape;
}

Result<double> ThreadBuilder::Popularity(TweetId root_sid) {
  Result<ThreadShape> shape = BuildShape(root_sid);
  if (!shape.ok()) return shape.status();
  return ThreadPopularity(*shape, options_.epsilon);
}

ThreadShape BuildShapeInMemory(
    const std::unordered_map<TweetId, std::vector<TweetId>>& children,
    TweetId root_sid, int max_depth) {
  ThreadShape shape;
  shape.level_sizes.push_back(1);
  std::vector<TweetId> frontier{root_sid};
  for (int depth = 1; depth < max_depth; ++depth) {
    std::vector<TweetId> next;
    for (const TweetId sid : frontier) {
      const auto it = children.find(sid);
      if (it == children.end()) continue;
      next.insert(next.end(), it->second.begin(), it->second.end());
    }
    if (next.empty()) break;
    shape.level_sizes.push_back(next.size());
    frontier = std::move(next);
  }
  return shape;
}

}  // namespace tklus
