// Death tests for the runtime deadlock witness (common/mutex.h with
// -DTKLUS_DEADLOCK_DEBUG=ON): every ranked acquisition is checked against
// the thread's held-lock stack, so a lock-order inversion aborts with
// both stacks printed instead of deadlocking under the right
// interleaving. The ranks come from core/lock_ranks.h — the same DAG the
// static lock-order rule enforces lexically — so these tests prove the
// runtime and static layers agree on what an inversion is.
//
// This file is only registered when the cmake option is ON; the witness
// types do not exist otherwise.
#include <gtest/gtest.h>

#include "common/mutex.h"
#include "core/engine.h"
#include "core/lock_ranks.h"
#include "datagen/tweet_generator.h"

namespace tklus {
namespace {

// Death tests fork; threadsafe style re-executes the binary so they stay
// sound under TSan and the engine's background merge thread.
class DeadlockWitnessDeathTest : public testing::Test {
 protected:
  DeadlockWitnessDeathTest() {
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(DeadlockWitnessDeathTest, ConformingOrderDoesNotAbort) {
  Mutex append(lockrank::kAppendMu, "append_mu_");
  Mutex merge(lockrank::kMergeMu, "merge_mu_");
  SharedMutex mu(lockrank::kEngineMu, "mu_");
  Mutex wake(lockrank::kMergeWakeMu, "merge_wake_mu_");
  {
    MutexLock a(&append);
    MutexLock m(&merge);
    WriterMutexLock w(&mu);
  }
  {
    MutexLock a(&append);
    MutexLock k(&wake);  // the AppendBatch wakeup chain
  }
  {
    MutexLock m(&merge);
    ReaderMutexLock r(&mu);  // skipping a rank is fine: ranks must climb
  }
  SUCCEED();
}

TEST_F(DeadlockWitnessDeathTest, InversionAborts) {
  // The exact inversion the static rule's fail fixture seeds:
  // merge_mu_ (rank 20) held, then append_mu_ (rank 10) requested.
  EXPECT_DEATH(
      {
        Mutex append(lockrank::kAppendMu, "append_mu_");
        Mutex merge(lockrank::kMergeMu, "merge_mu_");
        MutexLock m(&merge);
        MutexLock a(&append);
      },
      "lock-order inversion");
}

TEST_F(DeadlockWitnessDeathTest, EqualRankAborts) {
  // Two distinct locks sharing a rank cannot be ordered against each
  // other; acquiring the second is an inversion, not a tie.
  EXPECT_DEATH(
      {
        Mutex a(lockrank::kMergeMu, "a");
        Mutex b(lockrank::kMergeMu, "b");
        MutexLock la(&a);
        MutexLock lb(&b);
      },
      "lock-order inversion");
}

TEST_F(DeadlockWitnessDeathTest, RecursiveExclusiveAborts) {
  EXPECT_DEATH(
      {
        Mutex mu(lockrank::kAppendMu, "append_mu_");
        MutexLock outer(&mu);
        MutexLock inner(&mu);
      },
      "recursive acquisition");
}

TEST_F(DeadlockWitnessDeathTest, RecursiveSharedAborts) {
  // Even two *reader* locks self-deadlock on the writer-preferring
  // SharedMutex: a writer queued between them blocks the inner reader
  // forever. The witness calls this out explicitly.
  EXPECT_DEATH(
      {
        SharedMutex mu(lockrank::kEngineMu, "mu_");
        ReaderMutexLock outer(&mu);
        ReaderMutexLock inner(&mu);
      },
      "shared readers deadlock behind a queued writer");
}

TEST_F(DeadlockWitnessDeathTest, UnrankedLocksAreUnconstrained) {
  // Locks without a declared rank opt out of ordering (they are leaves
  // like the metrics registry's mutex) but recursion is still fatal.
  Mutex a;
  Mutex b;
  {
    MutexLock lb(&b);
    MutexLock la(&a);
  }
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  SUCCEED();
}

TEST_F(DeadlockWitnessDeathTest, ReleaseResetsTheHeldStack) {
  // Sequential (non-nested) acquisitions in "descending" rank order are
  // fine: the stack is empty between them.
  Mutex append(lockrank::kAppendMu, "append_mu_");
  Mutex merge(lockrank::kMergeMu, "merge_mu_");
  { MutexLock m(&merge); }
  { MutexLock a(&append); }
  {
    MutexLock a(&append);
    MutexLock m(&merge);
  }
  SUCCEED();
}

TEST_F(DeadlockWitnessDeathTest, TryLockRecordsWithoutOrderCheck) {
  // A successful TryLock cannot deadlock, so it skips the order check —
  // but it must still be visible as held to later blocking acquisitions.
  Mutex append(lockrank::kAppendMu, "append_mu_");
  Mutex merge(lockrank::kMergeMu, "merge_mu_");
  {
    MutexLock m(&merge);
    ASSERT_TRUE(append.TryLock());  // inverted, but non-blocking: allowed
    append.Unlock();
  }
  EXPECT_DEATH(
      {
        Mutex lo(lockrank::kAppendMu, "append_mu_");
        Mutex hi(lockrank::kMergeMu, "merge_mu_");
        ASSERT_TRUE(hi.TryLock());
        MutexLock l(&lo);  // blocking acquisition below a held rank
      },
      "lock-order inversion");
}

// The real engine's full lifecycle — build, append (WAL + wakeup chain),
// merge, query — under the witness: every chain the engine takes must
// climb the declared ranks, so this passing means the production lock
// discipline and lock_ranks.h agree.
TEST(DeadlockWitnessEngineTest, EngineLifecycleConforms) {
  datagen::TweetGenerator::Options gen;
  gen.num_users = 60;
  gen.num_tweets = 800;
  gen.num_cities = 2;
  const auto corpus = datagen::TweetGenerator::Generate(gen);

  Dataset first, second;
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    (i < corpus.dataset.size() / 2 ? first : second)
        .Add(corpus.dataset.posts()[i]);
  }

  auto engine = TkLusEngine::Build(first);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AppendBatch(second).ok());
  ASSERT_TRUE((*engine)->MergeNow().ok());

  TkLusQuery q;
  q.location = corpus.city_centers[0];
  q.radius_km = 15.0;
  q.keywords = {"hotel"};
  q.k = 5;
  ASSERT_TRUE((*engine)->Query(q).ok());
}

}  // namespace
}  // namespace tklus
