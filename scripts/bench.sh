#!/usr/bin/env bash
# Runs the machine-readable performance baseline (bench_query_throughput)
# and leaves BENCH_query.json in the repo root.
#
# Usage:
#   scripts/bench.sh             full run (default 60k-tweet corpus)
#   scripts/bench.sh --smoke     small corpus, <1 min — the CI smoke job
#   scripts/bench.sh ARGS...     extra args forwarded to the binary
#
# Reuses an existing build when one has the binary; otherwise configures
# a RelWithDebInfo build into build/ first. TKLUS_BENCH_TWEETS scales the
# corpus as for every other bench binary.
set -eu

cd "$(dirname "$0")/.."

bin=$(ls -t build*/bench/bench_query_throughput 2>/dev/null | head -n1 || true)
if [ -z "$bin" ] || [ ! -x "$bin" ]; then
  echo "bench: building bench_query_throughput"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build -j"$(nproc)" --target bench_query_throughput
  bin=build/bench/bench_query_throughput
fi

exec "$bin" --out BENCH_query.json "$@"
