#ifndef TKLUS_CORE_FEDERATION_H_
#define TKLUS_CORE_FEDERATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/query.h"

namespace tklus {

// Cross-platform TkLUS (§VIII future work: "make the search for local
// users across the platform boundary, such that more informative query
// results can be obtained by involving different social networks").
// Each platform runs its own TkLusEngine over its own corpus; a federated
// query fans out to every platform and merges the per-platform top-k lists
// into one ranking. User ids are platform-scoped, so results carry the
// platform name.
//
// Score comparability: each engine scores with its own ScoringParams; use
// the same alpha/N/epsilon across platforms (or accept that the merged
// order reflects per-platform calibration, as a real cross-network search
// would).
struct FederatedUser {
  std::string platform;
  UserId uid = 0;
  double score = 0.0;
};

// What happened on one platform during a federated query. `status` is OK
// when the platform contributed results; on failure `stats` is
// default-initialized.
struct PlatformOutcome {
  std::string platform;
  Status status = Status::Ok();
  QueryStats stats;
};

struct FederatedResult {
  std::vector<FederatedUser> users;  // descending score, at most k
  // Per-platform query stats, index-aligned with the platform list. On a
  // degraded result, failed platforms carry default stats; consult
  // `outcomes` for their errors.
  std::vector<QueryStats> platform_stats;
  // Per-platform status + stats, index-aligned with the platform list.
  std::vector<PlatformOutcome> outcomes;
  // True when at least one platform failed and `users` merges only the
  // surviving platforms.
  bool degraded = false;

  size_t platforms_ok() const {
    size_t n = 0;
    for (const PlatformOutcome& o : outcomes) n += o.status.ok() ? 1 : 0;
    return n;
  }
  size_t platforms_failed() const { return outcomes.size() - platforms_ok(); }
};

class FederatedEngine {
 public:
  struct Options {
    // Degraded mode (default): a failing platform is recorded in
    // `FederatedResult::outcomes` and the merge continues over the
    // survivors; the query only fails when every platform fails. Strict
    // mode: the first platform error fails the whole query (the pre-
    // fault-tolerance behavior).
    bool strict = false;
  };

  FederatedEngine() = default;
  explicit FederatedEngine(Options options) : options_(options) {}

  // Registers a platform. The engine must outlive the federation.
  void AddPlatform(std::string name, TkLusEngine* engine) {
    platforms_.push_back(Platform{std::move(name), engine});
  }

  size_t platform_count() const { return platforms_.size(); }
  const Options& options() const { return options_; }

  // Fans the query out to every platform (each asked for its own top-k)
  // and merges by score. A platform whose query fails degrades the result
  // (see Options::strict) instead of failing it, so one dead data node
  // never silences the other networks. When every platform fails, returns
  // kUnavailable carrying the first error.
  Result<FederatedResult> Query(const TkLusQuery& query) const;

 private:
  struct Platform {
    std::string name;
    TkLusEngine* engine;
  };
  Options options_;
  std::vector<Platform> platforms_;
};

}  // namespace tklus

#endif  // TKLUS_CORE_FEDERATION_H_
