#include "datagen/tweet_generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/zipf.h"
#include "datagen/cities.h"
#include "datagen/text_model.h"
#include "geo/distance.h"

namespace tklus {
namespace datagen {

namespace {

// A point jittered around `center` with the given standard deviation in
// kilometres (isotropic in the local frame).
GeoPoint Jitter(Rng& rng, const GeoPoint& center, double sigma_km) {
  const double dlat = rng.Normal(0.0, sigma_km / kKmPerDegreeLat);
  const double coslat =
      std::max(0.2, std::cos(center.lat * kDegToRad));
  const double dlon = rng.Normal(0.0, sigma_km / (kKmPerDegreeLat * coslat));
  return GeoPoint{std::clamp(center.lat + dlat, -89.9, 89.9),
                  std::clamp(center.lon + dlon, -179.9, 179.9)};
}

struct UserProfile {
  int city = 0;
  GeoPoint home;
  bool is_expert = false;
  int expert_topic = -1;   // index into TopicWords()
  double activity = 1.0;
};

}  // namespace

GeneratedCorpus TweetGenerator::Generate(const Options& options) {
  Rng rng(options.seed);
  GeneratedCorpus corpus;

  const auto& all_cities = WorldCities();
  const int num_cities =
      std::clamp<int>(options.num_cities, 1,
                      static_cast<int>(all_cities.size()));
  double city_weight_sum = 0;
  for (int c = 0; c < num_cities; ++c) {
    corpus.city_centers.push_back(all_cities[c].center);
    corpus.city_names.push_back(all_cities[c].name);
    city_weight_sum += all_cities[c].weight;
  }
  const auto sample_city = [&]() {
    double u = rng.NextDouble() * city_weight_sum;
    for (int c = 0; c < num_cities; ++c) {
      u -= all_cities[c].weight;
      if (u <= 0) return c;
    }
    return num_cities - 1;
  };

  const auto& topics = TopicWords();
  const ZipfSampler topic_zipf(topics.size(), options.topic_zipf_s);
  const auto& fillers = FillerWords();

  // ---- Users. The first experts_per_city * experts_per_topic *
  // num_cities users are planted experts: experts_per_topic users cover
  // each of the first experts_per_city topics in every city, so each hot
  // keyword has several comparably-influential locals per city (the
  // regime the paper's pruning results imply).
  const size_t per_topic = std::max<size_t>(1, options.experts_per_topic);
  const size_t experts_per_city_total =
      options.experts_per_city * per_topic;
  const size_t num_experts =
      std::min(options.num_users,
               experts_per_city_total * static_cast<size_t>(num_cities));
  std::vector<UserProfile> users(options.num_users);
  for (size_t u = 0; u < options.num_users; ++u) {
    UserProfile& profile = users[u];
    if (u < num_experts) {
      profile.is_expert = true;
      profile.city = static_cast<int>(u / experts_per_city_total);
      profile.expert_topic =
          static_cast<int>((u % experts_per_city_total) / per_topic);
      // Experts live *across* the city, not at its centre: a larger query
      // radius therefore reaches additional, more distant experts — the
      // effect behind Fig. 13's precision decay and Fig. 12's growing
      // pruning gains.
      profile.home = Jitter(rng, corpus.city_centers[profile.city],
                            options.home_sigma_km);
      corpus.experts.push_back(ExpertProfile{
          static_cast<UserId>(u + 1), topics[profile.expert_topic],
          profile.home, 12.0});
    } else {
      profile.city = sample_city();
      profile.home = Jitter(rng, corpus.city_centers[profile.city],
                            options.home_sigma_km);
    }
  }
  // Zipf activity over a random permutation of users; experts tripled so
  // they have enough on-topic volume to be discoverable.
  {
    std::vector<size_t> ranks(options.num_users);
    for (size_t u = 0; u < options.num_users; ++u) ranks[u] = u;
    // Fisher-Yates with our deterministic RNG.
    for (size_t u = options.num_users - 1; u > 0; --u) {
      std::swap(ranks[u], ranks[rng.UniformInt(uint64_t{u + 1})]);
    }
    const size_t top_decile = std::max<size_t>(1, options.num_users / 10);
    for (size_t u = 0; u < options.num_users; ++u) {
      size_t rank = ranks[u];
      // Experts are by construction active accounts: their activity rank
      // is folded into the top decile so every planted expert posts
      // enough on-topic roots to own popular threads.
      if (users[u].is_expert) rank %= top_decile;
      users[u].activity =
          1.0 / std::pow(static_cast<double>(rank + 1),
                         options.activity_zipf_s);
      if (users[u].is_expert) users[u].activity *= 2.0;
    }
  }
  std::vector<double> activity_cdf(options.num_users);
  double activity_sum = 0;
  for (size_t u = 0; u < options.num_users; ++u) {
    activity_sum += users[u].activity;
    activity_cdf[u] = activity_sum;
  }
  const auto sample_user = [&]() -> size_t {
    const double target = rng.NextDouble() * activity_sum;
    return static_cast<size_t>(
        std::lower_bound(activity_cdf.begin(), activity_cdf.end(), target) -
        activity_cdf.begin());
  };

  // ---- Tweets. Preferential-attachment pool: a tweet index enters the
  // pool when posted (expert roots several times) and again each time it
  // gains a child, yielding heavy-tailed cascades.
  struct TweetInfo {
    size_t user = 0;
    int topic = -1;    // index into topics, -1 none
    int depth = 0;     // 0 = root
    size_t root = 0;   // index of the thread root
    int thread_size = 0;  // maintained on the root entry only
  };
  std::vector<TweetInfo> info;
  info.reserve(options.num_tweets);
  std::vector<size_t> pool;
  pool.reserve(options.num_tweets * 2);
  constexpr size_t kRecencyWindow = 20000;

  // Hot topics carry larger threads (the paper's Table-II keywords are hot
  // precisely because they generate conversation); the cap shrinks with
  // topic rank, which also makes the per-keyword upper bounds of §V-B
  // genuinely different from the global bound.
  const auto thread_cap = [&options](int topic) {
    if (topic < 0) return std::max(2, options.max_children_boost / 2);
    if (topic < 10) {
      return static_cast<int>(options.max_children_boost *
                              (2.2 - 0.12 * topic));
    }
    return std::max(3, static_cast<int>(options.max_children_boost * 0.8));
  };

  std::string text;
  for (size_t i = 0; i < options.num_tweets; ++i) {
    const int64_t sid = options.start_sid + static_cast<int64_t>(i);
    Post post;
    post.sid = sid;
    TweetInfo tweet;

    // Choose reply vs root.
    ssize_t parent = -1;
    if (!pool.empty() && rng.Bernoulli(options.reply_prob)) {
      for (int attempt = 0; attempt < 4; ++attempt) {
        const size_t lo = pool.size() > kRecencyWindow
                              ? pool.size() - kRecencyWindow
                              : 0;
        const size_t pick =
            lo + rng.UniformInt(uint64_t{pool.size() - lo});
        size_t cand = pool[pick];
        // Most engagement lands on the thread root itself (as on real
        // microblog platforms); the rest deepens the cascade.
        if (rng.Bernoulli(0.7)) cand = info[cand].root;
        // Saturated threads accept no further replies: the cap bounds
        // every thread, so per-keyword popularity has a dense, flat head.
        const TweetInfo& root_info = info[info[cand].root];
        if (root_info.thread_size >= thread_cap(root_info.topic)) {
          continue;
        }
        if (info[cand].depth + 1 < options.max_thread_chain) {
          parent = static_cast<ssize_t>(cand);
          break;
        }
      }
    }

    text.clear();
    const auto add_word = [&](const std::string& w) {
      if (!text.empty()) text += ' ';
      text += w;
    };

    if (parent >= 0) {
      // Reply or forward to `parent`.
      const TweetInfo& parent_info = info[parent];
      const size_t u = sample_user();
      tweet.user = u;
      tweet.depth = parent_info.depth + 1;
      post.uid = static_cast<UserId>(u + 1);
      post.ruid = static_cast<UserId>(parent_info.user + 1);
      post.rsid = options.start_sid + static_cast<int64_t>(parent);
      post.is_forward = rng.Bernoulli(options.forward_frac);
      post.location = Jitter(rng, users[u].home, options.tweet_sigma_km);
      // Replies echo the parent's topic half the time.
      if (parent_info.topic >= 0 && rng.Bernoulli(0.5)) {
        tweet.topic = parent_info.topic;
        add_word(fillers[rng.UniformInt(fillers.size())]);
        add_word(topics[tweet.topic]);
      } else {
        add_word(fillers[rng.UniformInt(fillers.size())]);
      }
      add_word(fillers[rng.UniformInt(fillers.size())]);
      tweet.root = parent_info.root;
      // Rich get richer, but capped: once a thread reaches
      // max_children_boost tweets it stops attracting extra attachment
      // weight, which yields a dense head of comparably-popular threads
      // per topic instead of a single runaway cascade.
      ++info[tweet.root].thread_size;
      pool.push_back(static_cast<size_t>(parent));
      pool.push_back(i);
    } else {
      // Root tweet.
      const size_t u = sample_user();
      tweet.user = u;
      tweet.depth = 0;
      tweet.root = i;
      post.uid = static_cast<UserId>(u + 1);
      const UserProfile& profile = users[u];

      int topic;
      GeoPoint around = profile.home;
      if (profile.is_expert && rng.Bernoulli(0.8)) {
        topic = profile.expert_topic;
        around = Jitter(rng, profile.home, 1.5);
      } else {
        topic = static_cast<int>(topic_zipf.Sample(rng));
        if (rng.Bernoulli(options.travel_prob)) {
          around = Jitter(rng, corpus.city_centers[sample_city()], 2.0);
        }
      }
      tweet.topic = topic;
      post.location = Jitter(rng, around, options.tweet_sigma_km);

      // Compose: filler [modifier] topic filler* [topic again] [cityname].
      add_word(fillers[rng.UniformInt(fillers.size())]);
      if (rng.Bernoulli(0.35)) {
        const auto modifiers = ModifiersForTopic(topics[topic]);
        add_word(modifiers[rng.UniformInt(modifiers.size())]);
      }
      add_word(topics[topic]);
      const int extra = static_cast<int>(rng.UniformInt(uint64_t{3}));
      for (int w = 0; w < extra; ++w) {
        add_word(fillers[rng.UniformInt(fillers.size())]);
      }
      // A fraction of expert on-topic roots are "viral seeds" (heavy
      // attachment weight below). Viral posts name their topic repeatedly
      // (text + hashtags), so thread-leading tweets carry tf 3-4 while
      // ordinary mentions carry tf 1-2 — the term-frequency spread that
      // makes the Alg. 5 per-tweet bound selective.
      const bool viral = profile.is_expert &&
                         topic == profile.expert_topic &&
                         rng.Bernoulli(options.viral_seed_prob);
      if (viral) {
        add_word(topics[topic]);
        add_word(topics[topic]);  // tf = 3
        if (rng.Bernoulli(0.5)) add_word(topics[topic]);  // tf = 4
      } else if (rng.Bernoulli(options.topic_repeat_prob)) {
        add_word(topics[topic]);  // bag-model tf = 2
        if (rng.Bernoulli(0.3)) add_word(topics[topic]);  // tf = 3
      }
      if (rng.Bernoulli(0.08)) {
        add_word(corpus.city_names[profile.city]);
      }
      // Viral seeds carry a large attachment weight. Sizing: with reply
      // volume R and thread cap C, about R/C threads can saturate; the
      // seed rate keeps the number of seeds near that capacity so experts
      // own several saturated (comparably popular) threads each.
      const int copies =
          viral ? static_cast<int>(options.expert_root_boost) : 2;
      for (int c = 0; c < copies; ++c) pool.push_back(i);
    }

    // Optionally strip the geo-tag; most such posts still name their city
    // so the gazetteer extension can recover the location.
    if (options.untagged_frac > 0 && rng.Bernoulli(options.untagged_frac)) {
      post.geo_source = GeoSource::kNone;
      if (rng.Bernoulli(0.8)) {
        add_word(corpus.city_names[users[tweet.user].city]);
      }
    }

    post.text = text;
    corpus.post_topics.push_back(tweet.topic >= 0 ? topics[tweet.topic]
                                                  : std::string());
    corpus.dataset.Add(std::move(post));
    info.push_back(tweet);
  }
  return corpus;
}

}  // namespace datagen
}  // namespace tklus
