// Concurrent read-path baseline: single- vs multi-thread query throughput
// (QPS, p50/p99 latency) under the engine's shared-lock read path, plus
// cold-vs-warm popularity-cache effect on metadata-DB physical reads.
//
// Unlike the per-figure benches this one emits a machine-readable
// BENCH_query.json (schema: EXPERIMENTS.md "BENCH_query.json") so CI can
// track regressions; the human-readable table still goes to stdout.
//
// Flags:
//   --smoke       small corpus + fewer repetitions (CI-friendly, <1 min)
//   --out <path>  JSON destination (default: BENCH_query.json in cwd)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/trace.h"

namespace {

using namespace tklus;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct PassStats {
  uint64_t queries = 0;
  uint64_t db_page_reads = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t threads_built = 0;
  uint64_t sid_store_hits = 0;
  uint64_t sid_store_fallback_rows = 0;
};

// One serial pass over the workload, accumulating the QueryStats that the
// cold/warm comparison reports.
PassStats RunPass(TkLusEngine& engine, const std::vector<TkLusQuery>& queries) {
  PassStats pass;
  for (const TkLusQuery& q : queries) {
    auto result = engine.Query(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    ++pass.queries;
    pass.db_page_reads += result->stats.db_page_reads;
    pass.cache_hits += result->stats.popularity_cache_hits;
    pass.cache_misses += result->stats.popularity_cache_misses;
    pass.threads_built += result->stats.threads_built;
    pass.sid_store_hits += result->stats.sid_store_hits;
    pass.sid_store_fallback_rows += result->stats.sid_store_fallback_rows;
  }
  return pass;
}

// Display/JSON order of the pipeline stages (matches execution order in
// QueryProcessor::Process).
constexpr const char* kStageNames[] = {
    stage::kCover, stage::kPostingsFetch, stage::kSidResolve,
    stage::kThreadConstruction, stage::kScoreTopk};
constexpr size_t kNumStages = sizeof(kStageNames) / sizeof(kStageNames[0]);

struct StageTotals {
  uint64_t queries = 0;
  uint64_t root_ns = 0;
  uint64_t stage_ns[kNumStages] = {};
  uint64_t stage_db_reads[kNumStages] = {};
  // Sum of stage spans / root span: the acceptance bar is >= 0.95 (the
  // stages tile the query, leaving only span bookkeeping uncovered).
  double Coverage() const {
    uint64_t total = 0;
    for (const uint64_t ns : stage_ns) total += ns;
    return root_ns > 0 ? static_cast<double>(total) /
                             static_cast<double>(root_ns)
                       : 0.0;
  }
};

// One traced serial pass: every query runs with TkLusQuery::trace on and
// the per-query span trees are folded into per-stage wall-time and I/O
// totals.
StageTotals RunTracedPass(TkLusEngine& engine,
                          const std::vector<TkLusQuery>& queries) {
  StageTotals totals;
  for (TkLusQuery q : queries) {
    q.trace = true;
    auto result = engine.Query(q);
    if (!result.ok()) {
      std::fprintf(stderr, "traced query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    const std::shared_ptr<const Trace>& trace = result->stats.trace;
    if (trace == nullptr || trace->spans.empty()) {
      std::fprintf(stderr, "traced query returned no trace\n");
      std::exit(1);
    }
    ++totals.queries;
    const TraceSpan& root = trace->spans.front();
    totals.root_ns += root.duration_ns;
    for (const TraceSpan& span : trace->spans) {
      if (span.parent != root.id) continue;
      for (size_t s = 0; s < kNumStages; ++s) {
        if (span.name == kStageNames[s]) {
          totals.stage_ns[s] += span.duration_ns;
          totals.stage_db_reads[s] += span.Counter(stage::kCounterDbPageReads);
          break;
        }
      }
    }
  }
  return totals;
}

struct ThroughputPoint {
  int threads = 1;
  uint64_t queries = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

// `threads` workers each run the full workload `reps` times against the
// shared engine (warm cache, shared read lock); latencies are per-query.
ThroughputPoint RunThroughput(TkLusEngine& engine,
                              const std::vector<TkLusQuery>& queries,
                              int threads, int reps) {
  std::vector<std::vector<double>> latencies(threads);
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&engine, &queries, &latencies, reps, t] {
      std::vector<double>& mine = latencies[t];
      mine.reserve(queries.size() * static_cast<size_t>(reps));
      for (int rep = 0; rep < reps; ++rep) {
        for (const TkLusQuery& q : queries) {
          const auto q_start = Clock::now();
          auto result = engine.Query(q);
          if (!result.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         result.status().ToString().c_str());
            std::exit(1);
          }
          mine.push_back(MillisSince(q_start));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ms = MillisSince(start);

  ThroughputPoint point;
  point.threads = threads;
  point.wall_s = wall_ms / 1000.0;
  std::vector<double> all;
  for (const std::vector<double>& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  point.queries = all.size();
  point.qps = point.wall_s > 0
                  ? static_cast<double>(point.queries) / point.wall_s
                  : 0.0;
  point.p50_ms = Percentile(all, 0.50);
  point.p99_ms = Percentile(all, 0.99);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_query.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out path]\n", argv[0]);
      return 2;
    }
  }

  bench::Scale scale = bench::ScaleFromEnv();
  if (smoke && std::getenv("TKLUS_BENCH_TWEETS") == nullptr) {
    scale.tweets = 8000;
    scale.users = 400;
  }
  const int reps = smoke ? 1 : 2;

  bench::Banner("Query throughput — concurrent read path",
                "shared-lock queries scale with reader threads; the warm "
                "popularity cache removes repeat thread-construction I/O");
  std::printf("corpus: %zu tweets, %zu users; hardware threads: %u\n\n",
              scale.tweets, scale.users,
              std::thread::hardware_concurrency());

  // Reply-heavy corpus: about two thirds of posts are replies/forwards
  // (the paper's crawl is thread-dominated — threads are TkLUS's whole
  // subject), so thread construction carries the I/O the φ-memo can
  // save. The spatial/text distributions stay the shared bench defaults.
  datagen::TweetGenerator::Options corpus_options =
      bench::CorpusOptions(scale);
  corpus_options.reply_prob = 0.65;
  const auto corpus = datagen::TweetGenerator::Generate(corpus_options);
  // Memory-constrained pool (~3% of the database's pages): the paper's
  // disk-resident setting, taken further than the other benches' 256 so
  // repeat thread construction pays physical I/O instead of being
  // absorbed by pool residency — that I/O is what the φ-memo removes.
  TkLusEngine::Options engine_options;
  engine_options.buffer_pool_pages = 32;
  auto engine = bench::MakeEngine(corpus.dataset, engine_options);
  // Repeated-keyword workload: the §VI-B1 spatial sampling of the
  // standard 90-query workload, but with the Table-II hot keywords
  // cycled across the locations — every keyword recurs 9x, and hot
  // keywords are where the viral threads (and so the φ-memo's savings)
  // live. Each query repeats within a pass and across passes.
  static const char* kHotKeywords[] = {
      "restaurant", "game", "cafe",   "shop", "hotel",
      "club",       "coffee", "film", "pizza", "mall"};
  datagen::WorkloadOptions wl;
  // Upper-mid radius of the paper's 5..100 km sweep (Fig. 8): enough
  // in-radius candidates that thread construction, not candidate-meta
  // fetching, is the dominant I/O — the regime TkLUS targets.
  wl.radius_km = 50.0;
  std::vector<TkLusQuery> workload = MakeQueryWorkload(corpus, wl);
  for (size_t i = 0; i < workload.size(); ++i) {
    workload[i].keywords = {kHotKeywords[i % 10]};
  }

  // ---- cold vs warm: the same workload twice on a fresh engine. Every
  // keyword repeats across the workload's groups, so even the cold pass
  // has intra-pass reuse; the warm pass is all reuse.
  const PassStats cold = RunPass(*engine, workload);
  const PassStats warm = RunPass(*engine, workload);
  const double cold_hit_rate =
      cold.cache_hits + cold.cache_misses > 0
          ? static_cast<double>(cold.cache_hits) /
                static_cast<double>(cold.cache_hits + cold.cache_misses)
          : 0.0;
  const double warm_hit_rate =
      warm.cache_hits + warm.cache_misses > 0
          ? static_cast<double>(warm.cache_hits) /
                static_cast<double>(warm.cache_hits + warm.cache_misses)
          : 0.0;
  const double read_reduction =
      cold.db_page_reads > 0
          ? 1.0 - static_cast<double>(warm.db_page_reads) /
                      static_cast<double>(cold.db_page_reads)
          : 0.0;
  std::printf("%-6s %-9s %-14s %-10s %-10s %-10s\n", "pass", "queries",
              "db pg reads", "phi hits", "phi miss", "hit rate");
  std::printf("%-6s %-9llu %-14llu %-10llu %-10llu %-10.3f\n", "cold",
              (unsigned long long)cold.queries,
              (unsigned long long)cold.db_page_reads,
              (unsigned long long)cold.cache_hits,
              (unsigned long long)cold.cache_misses, cold_hit_rate);
  std::printf("%-6s %-9llu %-14llu %-10llu %-10llu %-10.3f\n", "warm",
              (unsigned long long)warm.queries,
              (unsigned long long)warm.db_page_reads,
              (unsigned long long)warm.cache_hits,
              (unsigned long long)warm.cache_misses, warm_hit_rate);
  std::printf("warm-pass page-read reduction: %.1f%%\n",
              100.0 * read_reduction);
  // Steady state the SidStore promises: every candidate row resolves out
  // of the denormalized array (hits == rows), and the warm pass never
  // falls back to the metadata B+-tree (fallback rows == 0).
  std::printf("sid store: %llu entries, %.1f MiB; warm hits %llu, warm "
              "fallback rows %llu\n\n",
              (unsigned long long)engine->sid_store().entry_count(),
              static_cast<double>(engine->sid_store().size_bytes()) /
                  (1024.0 * 1024.0),
              (unsigned long long)warm.sid_store_hits,
              (unsigned long long)warm.sid_store_fallback_rows);

  // ---- throughput scaling (warm cache for every point, so the only
  // variable is reader concurrency).
  std::vector<ThroughputPoint> points;
  std::printf("%-8s %-9s %-9s %-10s %-10s %-10s\n", "threads", "queries",
              "wall s", "QPS", "p50 ms", "p99 ms");
  for (const int threads : {1, 2, 4}) {
    points.push_back(RunThroughput(*engine, workload, threads, reps));
    const ThroughputPoint& p = points.back();
    std::printf("%-8d %-9llu %-9.2f %-10.1f %-10.2f %-10.2f\n", p.threads,
                (unsigned long long)p.queries, p.wall_s, p.qps, p.p50_ms,
                p.p99_ms);
  }
  const double speedup =
      points.front().qps > 0 ? points.back().qps / points.front().qps : 0.0;
  std::printf("4-thread / 1-thread QPS: %.2fx (needs >= 4 hardware threads "
              "to show parallel speedup)\n\n",
              speedup);

  // ---- per-stage breakdown: the same workload traced, span trees folded
  // into per-stage totals. Coverage (stage sum / root span) certifies the
  // stages tile the query; the per-stage db-read column shows where the
  // physical I/O concentrates.
  const StageTotals stages = RunTracedPass(*engine, workload);
  std::printf("%-20s %-12s %-8s %-12s\n", "stage", "total ms", "share",
              "db pg reads");
  for (size_t s = 0; s < kNumStages; ++s) {
    const double share =
        stages.root_ns > 0 ? static_cast<double>(stages.stage_ns[s]) /
                                 static_cast<double>(stages.root_ns)
                           : 0.0;
    std::printf("%-20s %-12.2f %-8.3f %-12llu\n", kStageNames[s],
                static_cast<double>(stages.stage_ns[s]) * 1e-6, share,
                (unsigned long long)stages.stage_db_reads[s]);
  }
  std::printf("stage coverage of root span: %.1f%% (queries: %llu)\n\n",
              100.0 * stages.Coverage(),
              (unsigned long long)stages.queries);

  // ---- tracing overhead: single-thread QPS with every query traced vs
  // the untraced single-thread point above. Traces are allocated and the
  // clock is read per stage, so a few percent is expected; the untraced
  // path's instrumentation cost is what must stay negligible.
  std::vector<TkLusQuery> traced_workload = workload;
  for (TkLusQuery& q : traced_workload) q.trace = true;
  const ThroughputPoint traced_point =
      RunThroughput(*engine, traced_workload, 1, reps);
  const double tracing_overhead =
      points.front().qps > 0 ? 1.0 - traced_point.qps / points.front().qps
                             : 0.0;
  std::printf("traced 1-thread QPS: %.1f vs untraced %.1f (overhead "
              "%.1f%%)\n",
              traced_point.qps, points.front().qps,
              100.0 * tracing_overhead);

  // ---- machine-readable record (schema: EXPERIMENTS.md "BENCH_query").
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"tklus-bench-query-v1\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"corpus\": {\"tweets\": %zu, \"users\": %zu, "
               "\"workload_queries\": %zu},\n",
               scale.tweets, scale.users, workload.size());
  std::fprintf(out, "  \"throughput\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ThroughputPoint& p = points[i];
    std::fprintf(out,
                 "    {\"threads\": %d, \"queries\": %llu, \"wall_s\": %.4f, "
                 "\"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 p.threads, (unsigned long long)p.queries, p.wall_s, p.qps,
                 p.p50_ms, p.p99_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"qps_speedup_4_vs_1\": %.3f,\n", speedup);
  std::fprintf(out, "  \"stage_breakdown\": {\n");
  std::fprintf(out, "    \"queries\": %llu,\n",
               (unsigned long long)stages.queries);
  std::fprintf(out, "    \"root_ns_total\": %llu,\n",
               (unsigned long long)stages.root_ns);
  std::fprintf(out, "    \"coverage\": %.4f,\n", stages.Coverage());
  std::fprintf(out, "    \"stages\": [\n");
  for (size_t s = 0; s < kNumStages; ++s) {
    const double share =
        stages.root_ns > 0 ? static_cast<double>(stages.stage_ns[s]) /
                                 static_cast<double>(stages.root_ns)
                           : 0.0;
    std::fprintf(out,
                 "      {\"stage\": \"%s\", \"total_ns\": %llu, "
                 "\"share\": %.4f, \"db_page_reads\": %llu}%s\n",
                 kStageNames[s], (unsigned long long)stages.stage_ns[s],
                 share, (unsigned long long)stages.stage_db_reads[s],
                 s + 1 < kNumStages ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"tracing\": {\"qps_untraced_1t\": %.2f, "
               "\"qps_traced_1t\": %.2f, \"overhead\": %.4f},\n",
               points.front().qps, traced_point.qps, tracing_overhead);
  std::fprintf(out, "  \"cache\": {\n");
  std::fprintf(out,
               "    \"cold\": {\"db_page_reads\": %llu, \"hits\": %llu, "
               "\"misses\": %llu, \"hit_rate\": %.4f},\n",
               (unsigned long long)cold.db_page_reads,
               (unsigned long long)cold.cache_hits,
               (unsigned long long)cold.cache_misses, cold_hit_rate);
  std::fprintf(out,
               "    \"warm\": {\"db_page_reads\": %llu, \"hits\": %llu, "
               "\"misses\": %llu, \"hit_rate\": %.4f},\n",
               (unsigned long long)warm.db_page_reads,
               (unsigned long long)warm.cache_hits,
               (unsigned long long)warm.cache_misses, warm_hit_rate);
  std::fprintf(out, "    \"db_page_read_reduction\": %.4f\n", read_reduction);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sid_store\": {\n");
  std::fprintf(out, "    \"entries\": %llu,\n",
               (unsigned long long)engine->sid_store().entry_count());
  std::fprintf(out, "    \"bytes\": %llu,\n",
               (unsigned long long)engine->sid_store().size_bytes());
  std::fprintf(out,
               "    \"cold_hits\": %llu, \"cold_fallback_rows\": %llu,\n",
               (unsigned long long)cold.sid_store_hits,
               (unsigned long long)cold.sid_store_fallback_rows);
  std::fprintf(out,
               "    \"warm_hits\": %llu, \"warm_fallback_rows\": %llu\n",
               (unsigned long long)warm.sid_store_hits,
               (unsigned long long)warm.sid_store_fallback_rows);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
