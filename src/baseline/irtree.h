#ifndef TKLUS_BASELINE_IRTREE_H_
#define TKLUS_BASELINE_IRTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/rtree.h"
#include "core/query.h"
#include "model/dataset.h"
#include "text/tokenizer.h"

namespace tklus {

// A centralized IR-tree baseline (Cong et al. [5], Li et al. [14]): an
// R-tree whose every node carries an inverted file. Internal-node inverted
// files map a term to the children whose subtrees contain it, so search
// descends only into subtrees that can satisfy the keyword predicate and
// whose MBR intersects the query circle. This is the classical
// spatial-keyword comparator class the paper positions the hybrid index
// against (§VII-A).
class IRTree {
 public:
  struct Options {
    int max_entries = 32;
    TokenizerOptions tokenizer;
  };

  // Builds the tree over every post in `dataset` (ids = post indices).
  IRTree(const Dataset* dataset, Options options);
  explicit IRTree(const Dataset* dataset) : IRTree(dataset, Options{}) {}

  // Post indices within `radius_km` of `center` matching `terms`
  // (normalized) under the given semantics. The traversal prunes subtrees
  // lacking a required term.
  std::vector<size_t> RangeKeywordQuery(const GeoPoint& center,
                                        double radius_km,
                                        const std::vector<std::string>& terms,
                                        Semantics semantics) const;

  // Total (term -> entry) pairs across all node inverted files — the
  // storage-overhead figure of the IR-tree family.
  size_t inverted_entry_count() const { return inverted_entries_; }
  const RTree& rtree() const { return rtree_; }

  // Nodes whose inverted file was consulted in the last query (traversal
  // cost metric; not thread-safe, like the rest of this baseline).
  size_t last_nodes_visited() const { return last_nodes_visited_; }

 private:
  void AnnotateSubtree(void* node);

  const Dataset* dataset_;
  Options options_;
  Tokenizer tokenizer_;
  RTree rtree_;
  std::vector<std::vector<std::pair<std::string, int>>> post_terms_;
  size_t inverted_entries_ = 0;
  mutable size_t last_nodes_visited_ = 0;
};

}  // namespace tklus

#endif  // TKLUS_BASELINE_IRTREE_H_
