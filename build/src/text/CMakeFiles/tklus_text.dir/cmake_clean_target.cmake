file(REMOVE_RECURSE
  "libtklus_text.a"
)
