#include <gtest/gtest.h>

#include "core/federation.h"
#include "datagen/tweet_generator.h"

namespace tklus {
namespace {

Post MakePost(TweetId sid, UserId uid, double lat, double lon,
              const std::string& text, TweetId rsid = kNoId,
              UserId ruid = kNoId) {
  Post p;
  p.sid = sid;
  p.uid = uid;
  p.location = GeoPoint{lat, lon};
  p.text = text;
  p.rsid = rsid;
  p.ruid = ruid;
  return p;
}

// Two "platforms" over the same city: platform A has the stronger cafe
// user, platform B the stronger hotel user.
class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dataset a;
    a.Add(MakePost(1, 1, 10.0, 10.0, "cafe cafe fantastic"));
    for (TweetId sid = 10; sid < 20; ++sid) {
      a.Add(MakePost(sid, 100 + sid, 10.0, 10.0, "love it", 1, 1));
    }
    a.Add(MakePost(30, 2, 10.0, 10.0, "hotel is fine"));
    Dataset b;
    b.Add(MakePost(1, 1, 10.0, 10.0, "hotel hotel grand"));
    for (TweetId sid = 10; sid < 24; ++sid) {
      b.Add(MakePost(sid, 100 + sid, 10.0, 10.0, "wonderful", 1, 1));
    }
    b.Add(MakePost(30, 2, 10.0, 10.0, "cafe is fine"));

    auto engine_a = TkLusEngine::Build(a);
    auto engine_b = TkLusEngine::Build(b);
    ASSERT_TRUE(engine_a.ok());
    ASSERT_TRUE(engine_b.ok());
    engine_a_ = std::move(*engine_a);
    engine_b_ = std::move(*engine_b);
    federation_.AddPlatform("twitter", engine_a_.get());
    federation_.AddPlatform("weibo", engine_b_.get());
  }

  TkLusQuery Query(const std::string& keyword) {
    TkLusQuery q;
    q.location = GeoPoint{10.0, 10.0};
    q.radius_km = 10.0;
    q.keywords = {keyword};
    q.k = 4;
    return q;
  }

  std::unique_ptr<TkLusEngine> engine_a_, engine_b_;
  FederatedEngine federation_;
};

TEST_F(FederationTest, MergesAcrossPlatforms) {
  auto result = federation_.Query(Query("cafe"));
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->users.size(), 2u);
  // The popular cafe user lives on platform A ("twitter").
  EXPECT_EQ(result->users[0].platform, "twitter");
  EXPECT_EQ(result->users[0].uid, 1);
  // Platform B's weak cafe user still appears in the merged list.
  bool saw_weibo = false;
  for (const auto& user : result->users) {
    if (user.platform == "weibo") saw_weibo = true;
  }
  EXPECT_TRUE(saw_weibo);
  EXPECT_EQ(result->platform_stats.size(), 2u);
  // Healthy federation: nothing degraded, every outcome OK.
  EXPECT_FALSE(result->degraded);
  ASSERT_EQ(result->outcomes.size(), 2u);
  EXPECT_EQ(result->platforms_ok(), 2u);
  EXPECT_EQ(result->platforms_failed(), 0u);
  for (const PlatformOutcome& outcome : result->outcomes) {
    EXPECT_TRUE(outcome.status.ok());
  }
}

TEST_F(FederationTest, TopUserDependsOnKeyword) {
  auto cafe = federation_.Query(Query("cafe"));
  auto hotel = federation_.Query(Query("hotel"));
  ASSERT_TRUE(cafe.ok());
  ASSERT_TRUE(hotel.ok());
  EXPECT_EQ(cafe->users[0].platform, "twitter");
  EXPECT_EQ(hotel->users[0].platform, "weibo");
}

TEST_F(FederationTest, KAppliesToMergedList) {
  TkLusQuery q = Query("cafe");
  q.k = 1;
  auto result = federation_.Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->users.size(), 1u);
}

TEST_F(FederationTest, ScoresSortedDescending) {
  auto result = federation_.Query(Query("hotel"));
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->users.size(); ++i) {
    EXPECT_GE(result->users[i - 1].score, result->users[i].score);
  }
}

// --------------------------------------------------- degraded federation

// Marks every data node of `engine` dead (or alive again), making all of
// its postings unreadable — the "one social network is down" scenario.
void SetAllNodesDown(TkLusEngine* engine, bool down) {
  for (int n = 0; n < engine->dfs().options().num_data_nodes; ++n) {
    ASSERT_TRUE(engine->dfs().SetNodeDown(n, down).ok());
  }
}

TEST_F(FederationTest, DeadPlatformDegradesInsteadOfFailing) {
  SetAllNodesDown(engine_b_.get(), true);
  auto result = federation_.Query(Query("cafe"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The surviving platform's users are still returned, flagged degraded.
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->platforms_ok(), 1u);
  EXPECT_EQ(result->platforms_failed(), 1u);
  ASSERT_FALSE(result->users.empty());
  for (const FederatedUser& user : result->users) {
    EXPECT_EQ(user.platform, "twitter");
  }
  // The dead platform's error is preserved, per platform.
  ASSERT_EQ(result->outcomes.size(), 2u);
  EXPECT_EQ(result->outcomes[0].platform, "twitter");
  EXPECT_TRUE(result->outcomes[0].status.ok());
  EXPECT_EQ(result->outcomes[1].platform, "weibo");
  EXPECT_EQ(result->outcomes[1].status.code(), StatusCode::kUnavailable);
  // platform_stats stays index-aligned for older callers.
  EXPECT_EQ(result->platform_stats.size(), 2u);

  // The platform recovers: back to a full, non-degraded merge.
  SetAllNodesDown(engine_b_.get(), false);
  auto healthy = federation_.Query(Query("cafe"));
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy->degraded);
  EXPECT_EQ(healthy->platforms_ok(), 2u);
}

TEST_F(FederationTest, StrictModeFailsFastOnDeadPlatform) {
  FederatedEngine::Options options;
  options.strict = true;
  FederatedEngine strict(options);
  strict.AddPlatform("twitter", engine_a_.get());
  strict.AddPlatform("weibo", engine_b_.get());

  SetAllNodesDown(engine_b_.get(), true);
  auto result = strict.Query(Query("cafe"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  SetAllNodesDown(engine_b_.get(), false);
}

TEST_F(FederationTest, AllPlatformsDeadIsAnError) {
  // With every platform down, a degraded-but-empty result would read as
  // "no local users"; the federation must fail loudly instead.
  SetAllNodesDown(engine_a_.get(), true);
  SetAllNodesDown(engine_b_.get(), true);
  auto result = federation_.Query(Query("cafe"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("all platforms failed"),
            std::string::npos);
  SetAllNodesDown(engine_a_.get(), false);
  SetAllNodesDown(engine_b_.get(), false);
}

TEST(FederationEmptyTest, NoPlatformsRejected) {
  FederatedEngine federation;
  TkLusQuery q;
  q.location = GeoPoint{0, 0};
  q.radius_km = 5;
  q.keywords = {"cafe"};
  EXPECT_FALSE(federation.Query(q).ok());
}

// ------------------------------------------------------------- explain

TEST(ExplainTest, BreakdownAttachedOnRequest) {
  Dataset ds;
  ds.Add(MakePost(1, 1, 10.0, 10.0, "cafe cafe fantastic"));
  for (TweetId sid = 10; sid < 16; ++sid) {
    ds.Add(MakePost(sid, 100 + sid, 10.0, 10.0, "love it", 1, 1));
  }
  ds.Add(MakePost(30, 1, 10.01, 10.0, "another cafe note"));
  auto engine = TkLusEngine::Build(ds);
  ASSERT_TRUE(engine.ok());
  TkLusQuery q;
  q.location = GeoPoint{10.0, 10.0};
  q.radius_km = 10.0;
  q.keywords = {"cafe"};
  q.k = 5;

  auto plain = (*engine)->Query(q);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->users[0].why.has_value());

  q.explain = true;
  auto explained = (*engine)->Query(q);
  ASSERT_TRUE(explained.ok());
  ASSERT_FALSE(explained->users.empty());
  const RankedUser& top = explained->users[0];
  ASSERT_TRUE(top.why.has_value());
  EXPECT_EQ(top.uid, 1);
  EXPECT_EQ(top.why->matched_tweets, 2u);      // tweets 1 and 30
  EXPECT_EQ(top.why->best_tweet, 1);           // the thread-leading tweet
  EXPECT_GT(top.why->rho, 0.0);
  EXPECT_GT(top.why->delta, 0.0);
  // The Def. 10 mix reconstructs the reported score.
  ScoringParams params;
  EXPECT_NEAR(UserScore(top.why->rho, top.why->delta, params), top.score,
              1e-12);
}

}  // namespace
}  // namespace tklus
