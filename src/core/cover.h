#ifndef TKLUS_CORE_COVER_H_
#define TKLUS_CORE_COVER_H_

#include <string>
#include <vector>

#include "core/query.h"

namespace tklus {

// The one cover-computation path shared by the single-engine
// QueryProcessor and the ShardedEngine's scatter-gather router
// (Alg. 4/5 line 1): the sorted geohash cells of length `geohash_length`
// covering the query circle. Both sides calling this exact function is
// what keeps single and sharded covers from ever drifting — the shard
// router partitions precisely the cells the processors will fetch.
std::vector<std::string> ComputeCover(const TkLusQuery& query,
                                      int geohash_length);

}  // namespace tklus

#endif  // TKLUS_CORE_COVER_H_
