#ifndef TKLUS_TOOLS_ANALYZE_ANALYZER_H_
#define TKLUS_TOOLS_ANALYZE_ANALYZER_H_

#include <string>
#include <utility>
#include <vector>

#include "analyze/rules.h"
#include "common/status.h"

namespace tklus::analyze {

// Scan configuration: a root directory, scan paths relative to it, and
// optional explicit manifests. When `manifest` is empty the analyzer
// looks for `<root>/layers.conf` (fixture roots), then
// `<root>/tools/analyze/layers.conf` (the real tree); `lockorder` and
// `hotpath` resolve the same way against lockorder.conf / hotpath.conf.
// `jobs` caps the scan worker threads (0 = pick from
// hardware_concurrency).
struct AnalyzerOptions {
  std::string root = ".";
  std::vector<std::string> paths;  // default: {"src"}
  std::string manifest;
  std::string lockorder;
  std::string hotpath;
  unsigned jobs = 0;
};

// Wall-time and size accounting for one analysis run, emitted by
// --stats so CI can track analyzer cost as the tree grows. The parallel
// phases (lex, per-file model, rules) report wall time of the phase, not
// summed worker time; per-rule times are summed across workers (they
// measure relative rule cost, not wall time).
struct AnalyzerStats {
  double lex_ms = 0;
  double model_ms = 0;
  double callgraph_ms = 0;  // ProgramModel::Build
  double fixpoint_ms = 0;   // ComputeSummaries + ComputeHotPaths
  double rules_ms = 0;
  double total_ms = 0;
  size_t files = 0;
  size_t functions = 0;
  size_t call_edges = 0;
  std::vector<std::pair<std::string, double>> rule_ms;  // registry order
};

// Renders stats as a single JSON object (stable key order).
std::string StatsToJson(const AnalyzerStats& stats);

// Loads `path` as a layering manifest: `module: dep dep ...` lines,
// `#` comments. Declaring a module with no deps is `module:`.
Result<AnalyzerContext> LoadManifest(const std::string& path);

// Loads `path` as a lock-order manifest. Directives (with `#` comments):
//   lock NAME [PATH_SUFFIX]   declare a lock, optionally scoped to files
//                             whose path ends with PATH_SUFFIX
//   order A B [C ...]         A may be held when acquiring B, B when
//                             acquiring C, ... (edges of the DAG)
//   io-symbol NAME...         blocking call names for io-under-lock
//   io-lock NAME...           declared locks the io symbols are banned
//                             under (any mode)
// The declared order is cycle-checked at load — a cyclic "order" is a
// manifest bug, not a tree finding — and the returned config carries the
// transitive closure.
Result<LockOrderConfig> LoadLockOrderConfig(const std::string& path);

// Loads `path` as a hot-path manifest for hotpath-purity. Directives:
//   root NAME...    hot-path roots (plain or Class::Method spellings)
//   ban NAME...     call names banned anywhere reachable from a root
//   allow NAME...   audited helpers the reachability walk skips
Result<HotPathConfig> LoadHotPathConfig(const std::string& path);

// Runs the full analysis: parallel lex + per-file statement model,
// one sequential interprocedural pass (cross-TU call graph, summary
// fixpoint, hot-path reachability), then the parallel rule phase with
// NOLINT suppression filtering. File discovery is sorted and the final
// diagnostics are sorted by (path, line, rule), so the jobs count never
// changes the output. `stats` (optional) receives per-pass and per-rule
// timing.
Result<std::vector<Diagnostic>> RunAnalysis(const AnalyzerOptions& options,
                                            AnalyzerStats* stats = nullptr);

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_ANALYZER_H_
