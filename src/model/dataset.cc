#include "model/dataset.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "common/file_io.h"
#include "common/string_util.h"

namespace tklus {

void Dataset::Add(Post post) { posts_.push_back(std::move(post)); }

void Dataset::SortBySid() {
  std::sort(posts_.begin(), posts_.end(),
            [](const Post& a, const Post& b) { return a.sid < b.sid; });
}

size_t Dataset::CountUsers() const {
  std::unordered_set<UserId> users;
  for (const Post& p : posts_) users.insert(p.uid);
  return users.size();
}

std::unordered_map<UserId, std::vector<size_t>> Dataset::PostsByUser() const {
  std::unordered_map<UserId, std::vector<size_t>> by_user;
  for (size_t i = 0; i < posts_.size(); ++i) {
    by_user[posts_[i].uid].push_back(i);
  }
  return by_user;
}

Vocabulary Dataset::BuildVocabulary(const Tokenizer& tokenizer) const {
  Vocabulary vocab;
  for (const Post& p : posts_) {
    for (const std::string& term : tokenizer.Tokenize(p.text)) {
      vocab.Add(term);
    }
  }
  return vocab;
}

Status Dataset::SaveTsv(const std::string& path) const {
  std::string out;
  out.reserve(posts_.size() * 96);
  char buf[144];
  for (const Post& p : posts_) {
    std::snprintf(buf, sizeof(buf),
                  "%lld\t%lld\t%.8f\t%.8f\t%lld\t%lld\t%d\t%d\t",
                  static_cast<long long>(p.sid),
                  static_cast<long long>(p.uid), p.location.lat,
                  p.location.lon, static_cast<long long>(p.ruid),
                  static_cast<long long>(p.rsid), p.is_forward ? 1 : 0,
                  static_cast<int>(p.geo_source));
    out += buf;
    out += p.text;
    out += '\n';
  }
  // Temp-write + fsync + rename: a crash never leaves a torn dataset
  // under the final name (and datasets are small enough to stage whole).
  return fileio::WriteFilePlain(path, out);
}

Result<Dataset> Dataset::LoadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot read dataset: " + path);
  }
  Dataset ds;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() < 9) {
      return Status::Corruption("bad dataset line " + std::to_string(lineno));
    }
    Post p;
    try {
      p.sid = std::stoll(fields[0]);
      p.uid = std::stoll(fields[1]);
      p.location.lat = std::stod(fields[2]);
      p.location.lon = std::stod(fields[3]);
      p.ruid = std::stoll(fields[4]);
      p.rsid = std::stoll(fields[5]);
      p.is_forward = fields[6] == "1";
      const int source = std::stoi(fields[7]);
      if (source < 0 || source > 2) {
        return Status::Corruption("bad geo source at line " +
                                  std::to_string(lineno));
      }
      p.geo_source = static_cast<GeoSource>(source);
    } catch (const std::exception&) {
      return Status::Corruption("bad dataset field at line " +
                                std::to_string(lineno));
    }
    // Text may itself be empty; re-join in case it legitimately contained
    // no tab (fields[8..]).
    p.text = fields[8];
    for (size_t i = 9; i < fields.size(); ++i) {
      p.text += ' ';
      p.text += fields[i];
    }
    ds.Add(std::move(p));
  }
  return ds;
}

}  // namespace tklus
