file(REMOVE_RECURSE
  "../bench/bench_fig6_index_size"
  "../bench/bench_fig6_index_size.pdb"
  "CMakeFiles/bench_fig6_index_size.dir/bench_fig6_index_size.cpp.o"
  "CMakeFiles/bench_fig6_index_size.dir/bench_fig6_index_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_index_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
