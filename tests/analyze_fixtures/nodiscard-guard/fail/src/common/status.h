// Fixture: a status.h whose classes lost [[nodiscard]] must trip
// `nodiscard-guard`.
#ifndef FIXTURE_STATUS_H_
#define FIXTURE_STATUS_H_

namespace tklus {

class Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class Result {};

}  // namespace tklus

#endif  // FIXTURE_STATUS_H_
