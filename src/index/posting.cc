#include "index/posting.h"

namespace tklus {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint64(std::string_view data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

std::string EncodePostings(const std::vector<Posting>& postings) {
  std::string out;
  PutVarint64(&out, postings.size());
  int64_t prev_tid = 0;
  for (const Posting& p : postings) {
    PutVarint64(&out, static_cast<uint64_t>(p.tid - prev_tid));
    PutVarint64(&out, p.tf);
    prev_tid = p.tid;
  }
  return out;
}

Result<std::vector<Posting>> DecodePostings(std::string_view data) {
  size_t pos = 0;
  uint64_t count = 0;
  if (!GetVarint64(data, &pos, &count)) {
    return Status::Corruption("postings header truncated");
  }
  std::vector<Posting> out;
  out.reserve(count);
  int64_t prev_tid = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0, tf = 0;
    if (!GetVarint64(data, &pos, &delta) || !GetVarint64(data, &pos, &tf)) {
      return Status::Corruption("postings entry truncated");
    }
    prev_tid += static_cast<int64_t>(delta);
    out.push_back(Posting{prev_tid, static_cast<uint32_t>(tf)});
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes after postings");
  }
  return out;
}

}  // namespace tklus
