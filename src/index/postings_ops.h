#ifndef TKLUS_INDEX_POSTINGS_OPS_H_
#define TKLUS_INDEX_POSTINGS_OPS_H_

#include <vector>

#include "index/posting.h"

namespace tklus {

// Multi-keyword semantics over per-term candidate lists (Alg. 4/5 lines
// 9–14). Inputs are sorted by tid with unique tids; outputs likewise. The
// combined tf is the total occurrence count of query keywords in the tweet
// — the bag-model numerator |q.W ∩ p.W| of Definition 6.

// Tweets present in *every* list ("AND semantic"); tf = sum of tfs.
std::vector<Posting> IntersectPostings(
    const std::vector<std::vector<Posting>>& lists);

// Tweets present in *any* list ("OR semantic"); tf = sum of tfs present.
std::vector<Posting> UnionPostings(
    const std::vector<std::vector<Posting>>& lists);

// Merges two lists with the same term (e.g. one per geohash cell): tids
// are disjoint across cells, so this is a plain sorted merge.
std::vector<Posting> MergeDisjoint(const std::vector<Posting>& a,
                                   const std::vector<Posting>& b);

}  // namespace tklus

#endif  // TKLUS_INDEX_POSTINGS_OPS_H_
