file(REMOVE_RECURSE
  "libtklus_baseline.a"
)
