#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "model/dataset.h"
#include "model/post.h"
#include "text/tokenizer.h"

namespace tklus {
namespace {

Post MakePost(TweetId sid, UserId uid, double lat, double lon,
              const std::string& text, TweetId rsid = kNoId,
              UserId ruid = kNoId, bool fwd = false) {
  Post p;
  p.sid = sid;
  p.uid = uid;
  p.location = GeoPoint{lat, lon};
  p.text = text;
  p.rsid = rsid;
  p.ruid = ruid;
  p.is_forward = fwd;
  return p;
}

TEST(PostTest, ReplyDetection) {
  EXPECT_FALSE(MakePost(1, 1, 0, 0, "x").IsReplyOrForward());
  EXPECT_TRUE(MakePost(2, 1, 0, 0, "x", /*rsid=*/1, /*ruid=*/2)
                  .IsReplyOrForward());
}

TEST(DatasetTest, AddSortCount) {
  Dataset ds;
  ds.Add(MakePost(3, 10, 0, 0, "c"));
  ds.Add(MakePost(1, 10, 0, 0, "a"));
  ds.Add(MakePost(2, 20, 0, 0, "b"));
  ds.SortBySid();
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.posts()[0].sid, 1);
  EXPECT_EQ(ds.posts()[2].sid, 3);
  EXPECT_EQ(ds.CountUsers(), 2u);
}

TEST(DatasetTest, PostsByUser) {
  Dataset ds;
  ds.Add(MakePost(1, 7, 0, 0, "a"));
  ds.Add(MakePost(2, 8, 0, 0, "b"));
  ds.Add(MakePost(3, 7, 0, 0, "c"));
  const auto by_user = ds.PostsByUser();
  ASSERT_EQ(by_user.size(), 2u);
  EXPECT_EQ(by_user.at(7).size(), 2u);
  EXPECT_EQ(by_user.at(8).size(), 1u);
}

TEST(DatasetTest, BuildVocabulary) {
  Dataset ds;
  ds.Add(MakePost(1, 1, 0, 0, "great hotel"));
  ds.Add(MakePost(2, 1, 0, 0, "the hotel was great"));
  ds.Add(MakePost(3, 2, 0, 0, "pizza"));
  const Vocabulary vocab = ds.BuildVocabulary(Tokenizer());
  EXPECT_EQ(vocab.frequency(vocab.Lookup("hotel")), 2u);
  EXPECT_EQ(vocab.frequency(vocab.Lookup("great")), 2u);
  EXPECT_EQ(vocab.frequency(vocab.Lookup("pizza")), 1u);
  EXPECT_EQ(vocab.Lookup("the"), Vocabulary::kInvalidTerm);  // stop word
}

TEST(DatasetTest, TsvRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tklus_ds_roundtrip.tsv")
          .string();
  Dataset ds;
  ds.Add(MakePost(100, 1, 43.6839128, -79.3735659, "I'm at Four Seasons"));
  ds.Add(MakePost(101, 2, -23.99414062, -46.23046875, "reply here", 100, 1));
  ds.Add(MakePost(102, 3, 0.0, 0.0, "forwarded!", 100, 1, /*fwd=*/true));
  ASSERT_TRUE(ds.SaveTsv(path).ok());
  Result<Dataset> loaded = Dataset::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->posts()[0].text, "I'm at Four Seasons");
  EXPECT_NEAR(loaded->posts()[0].location.lat, 43.6839128, 1e-6);
  EXPECT_EQ(loaded->posts()[1].rsid, 100);
  EXPECT_FALSE(loaded->posts()[1].is_forward);
  EXPECT_TRUE(loaded->posts()[2].is_forward);
  std::filesystem::remove(path);
}

TEST(DatasetTest, LoadMissingFileFails) {
  EXPECT_FALSE(Dataset::LoadTsv("/nonexistent/file.tsv").ok());
}

TEST(DatasetTest, LoadCorruptLineFails) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tklus_ds_corrupt.tsv")
          .string();
  {
    std::ofstream out(path);
    out << "not\tenough\tfields\tfor\tthe\tnew\tformat\n";
  }
  EXPECT_FALSE(Dataset::LoadTsv(path).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tklus
