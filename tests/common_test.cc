#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/zipf.h"

namespace tklus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing key");
  EXPECT_EQ(st.ToString(), "NOT_FOUND: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    TKLUS_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(99);
  std::map<uint64_t, int> counts;
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(uint64_t{6})];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [v, n] : counts) {
    EXPECT_NEAR(n, kDraws / 6.0, kDraws * 0.01) << "value " << v;
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMatchesMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Geometric(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0;
  for (size_t i = 0; i < zipf.size(); ++i) sum += zipf.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostLikely) {
  ZipfSampler zipf(1000, 1.1);
  Rng rng(3);
  std::map<size_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  size_t argmax = 0;
  int best = 0;
  for (const auto& [rank, n] : counts) {
    if (n > best) {
      best = n;
      argmax = rank;
    }
  }
  EXPECT_EQ(argmax, 0u);
  // Empirical frequency of rank 0 close to pmf.
  EXPECT_NEAR(counts[0] / 50000.0, zipf.Pmf(0), 0.01);
}

TEST(ZipfTest, HigherExponentMoreSkewed) {
  ZipfSampler mild(100, 0.5), steep(100, 2.0);
  EXPECT_LT(mild.Pmf(0), steep.Pmf(0));
}

TEST(StringUtilTest, SplitBasic) {
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitNoSeparator) {
  const auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTrips) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, "-"), "x-y-z");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StringUtilTest, ToLowerAndStartsWith) {
  EXPECT_EQ(AsciiToLower("HoTel"), "hotel");
  EXPECT_TRUE(StartsWith("6gxp", "6g"));
  EXPECT_FALSE(StartsWith("6g", "6gxp"));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(3670016), "3.5 MiB");
}

}  // namespace
}  // namespace tklus
