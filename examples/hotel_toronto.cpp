// The paper's running example (Fig. 1 / Table I): seven "hotel" tweets
// around Toronto, queried at (43.6839128037, -79.37356590) with r = 10 km.
// Shows how the two ranking functions disagree: Sum favours u1 (two
// relevant tweets close to the query), Max favours u5 (one tweet with a
// far more popular thread).
#include <cstdio>

#include "core/engine.h"
#include "model/dataset.h"

using tklus::Dataset;
using tklus::GeoPoint;
using tklus::Post;
using tklus::Ranking;
using tklus::TkLusEngine;
using tklus::TkLusQuery;

namespace {

Dataset PaperExampleDataset() {
  Dataset ds;
  const auto add = [&ds](int64_t sid, int64_t uid, double lat, double lon,
                         const char* text, int64_t rsid = tklus::kNoId,
                         int64_t ruid = tklus::kNoId) {
    Post p;
    p.sid = sid;
    p.uid = uid;
    p.location = GeoPoint{lat, lon};
    p.text = text;
    p.rsid = rsid;
    p.ruid = ruid;
    ds.Add(std::move(p));
  };
  // Table I tweets A..G (locations consistent with Fig. 1).
  add(101, 1, 43.69290, -79.37357,
      "I'm at Toronto Marriott Bloor Yorkville Hotel");                // A
  add(102, 2, 43.662, -79.380, "Finally Toronto (at Clarion Hotel)."); // B
  add(103, 3, 43.672, -79.389, "I'm at Four Seasons Hotel Toronto.");  // C
  add(104, 4, 43.672, -79.390,
      "Veal, lemon ricotta gnocchi @ Four Seasons Hotel Toronto.");    // D
  add(105, 5, 43.70189, -79.37357,
      "And that was the best massage I've ever had. (@ The Spa at Four "
      "Seasons Hotel Toronto)");                                       // E
  add(106, 6, 43.672, -79.388,
      "Saturday night steez #fashion #style #ootd #toronto #saturday "
      "#party #outfit @ Four Seasons Hotel Toronto.");                 // F
  add(107, 1, 43.69290, -79.37357,
      "Marriott Bloor Yorkville Hotel is a perfect place to stay.");   // G
  // Reply threads: A gets 5 replies, G gets 12, E gets 23 ("u5's tweet E
  // has considerably more replies and forwards than other tweets").
  int64_t sid = 200;
  int64_t replier = 50;
  for (int i = 0; i < 5; ++i) {
    add(sid++, replier++, 43.684, -79.374, "looks great", 101, 1);
  }
  for (int i = 0; i < 12; ++i) {
    add(sid++, replier++, 43.684, -79.374, "so true", 107, 1);
  }
  for (int i = 0; i < 23; ++i) {
    add(sid++, replier++, 43.684, -79.374, "wonderful place", 105, 5);
  }
  return ds;
}

void RunAndPrint(TkLusEngine& engine, Ranking ranking, const char* label) {
  TkLusQuery query;
  query.location = GeoPoint{43.6839128037, -79.37356590};
  query.radius_km = 10.0;
  query.keywords = {"hotel"};
  query.k = 3;
  query.ranking = ranking;
  auto result = engine.Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  std::printf("%s ranking:\n", label);
  int rank = 1;
  for (const auto& user : result->users) {
    std::printf("  #%d  user u%lld  score %.4f\n", rank++,
                static_cast<long long>(user.uid), user.score);
  }
}

}  // namespace

int main() {
  auto engine = TkLusEngine::Build(PaperExampleDataset());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "TkLUS query: keyword \"hotel\", r = 10 km, at (43.6839, -79.3736)\n\n");
  RunAndPrint(**engine, Ranking::kSum, "Sum Score (Def. 7)");
  std::printf("\n");
  RunAndPrint(**engine, Ranking::kMax, "Maximum Score (Def. 8)");
  std::printf(
      "\nAs in the paper: Sum ranks u1 first (two relevant tweets near the\n"
      "query), Max ranks u5 first (tweet E leads the most popular thread).\n");
  return 0;
}
