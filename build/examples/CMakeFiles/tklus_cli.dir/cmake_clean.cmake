file(REMOVE_RECURSE
  "CMakeFiles/tklus_cli.dir/tklus_cli.cpp.o"
  "CMakeFiles/tklus_cli.dir/tklus_cli.cpp.o.d"
  "tklus_cli"
  "tklus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
