#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "common/file_io.h"
#include "common/retry.h"

namespace tklus {
namespace {

// ---------------------------------------------------------------- CRC32

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The canonical CRC-32/IEEE check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view{}, 0u), 0u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t first = Crc32(data.substr(0, split));
    const uint32_t chained = Crc32(data.substr(split), first);
    EXPECT_EQ(chained, Crc32(data)) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(512, '\x5a');
  const uint32_t clean = Crc32(data);
  data[137] ^= 0x01;
  EXPECT_NE(Crc32(data), clean);
}

// -------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, ScheduledFaultsFireInOrderThenStop) {
  FaultInjector injector(1);
  injector.FailNext("site", FaultKind::kTransient, 1);
  injector.FailNext("site", FaultKind::kPermanent, 1);

  Status first = injector.MaybeFail("site", "op");
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  Status second = injector.MaybeFail("site", "op");
  EXPECT_EQ(second.code(), StatusCode::kIoError);
  EXPECT_TRUE(injector.MaybeFail("site", "op").ok());
  EXPECT_EQ(injector.injected("site"), 2u);
  EXPECT_EQ(injector.injected("other"), 0u);
}

TEST(FaultInjectorTest, ProbabilisticFaultsAreSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    FaultInjector injector(seed);
    injector.SetFaultRate("site", FaultKind::kTransient, 0.3);
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(!injector.MaybeFail("site", "op").ok());
    }
    return outcomes;
  };
  // Same seed, same fault sequence; the rate is roughly honored.
  const std::vector<bool> a = run(99);
  EXPECT_EQ(a, run(99));
  const int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 120);
}

TEST(FaultInjectorTest, RateZeroNeverFiresAndRateOneAlwaysFires) {
  FaultInjector injector(3);
  injector.SetFaultRate("site", FaultKind::kPermanent, 1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.MaybeFail("site", "op").code(), StatusCode::kIoError);
  }
  injector.SetFaultRate("site", FaultKind::kPermanent, 0.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.MaybeFail("site", "op").ok());
  }
}

TEST(FaultInjectorTest, CorruptionFlipsExactlyOneByte) {
  FaultInjector injector(5);
  injector.FailNext("site", FaultKind::kCorruption, 1);
  std::string data(64, 'a');
  const std::string original = data;
  EXPECT_TRUE(injector.MaybeCorrupt("site", data.data(), data.size()));
  int diffs = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i] != original[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1);
  // The scheduled corruption is consumed.
  std::string again(64, 'a');
  EXPECT_FALSE(injector.MaybeCorrupt("site", again.data(), again.size()));
}

TEST(FaultInjectorTest, CorruptionRulesNeverFailOperations) {
  // Corruption rules must not leak into MaybeFail: the read "succeeds" but
  // yields damaged bytes.
  FaultInjector injector(6);
  injector.SetFaultRate("site", FaultKind::kCorruption, 1.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(injector.MaybeFail("site", "op").ok());
  }
  std::string data(16, 'x');
  EXPECT_TRUE(injector.MaybeCorrupt("site", data.data(), data.size()));
}

TEST(FaultInjectorTest, ClearRemovesRulesButKeepsCounters) {
  FaultInjector injector(8);
  injector.SetFaultRate("site", FaultKind::kPermanent, 1.0);
  EXPECT_FALSE(injector.MaybeFail("site", "op").ok());
  injector.Clear();
  EXPECT_TRUE(injector.MaybeFail("site", "op").ok());
  EXPECT_EQ(injector.total_injected(), 1u);
}

// ---------------------------------------------------------- RetryPolicy

TEST(RetryPolicyTest, BackoffIsDeterministicPerOpKey) {
  RetryPolicy policy;
  for (int retry = 1; retry <= 4; ++retry) {
    EXPECT_DOUBLE_EQ(policy.BackoffMs(retry, 17),
                     policy.BackoffMs(retry, 17));
  }
  // Different op keys jitter differently somewhere in the schedule.
  bool any_difference = false;
  for (int retry = 1; retry <= 4; ++retry) {
    if (policy.BackoffMs(retry, 17) != policy.BackoffMs(retry, 18)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndIsCapped) {
  RetryPolicy policy;
  policy.base_backoff_ms = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 4.0;
  policy.jitter_fraction = 0.0;  // pure schedule
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3, 0), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(4, 0), 4.0);  // capped
}

TEST(RetryPolicyTest, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.base_backoff_ms = 8.0;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_ms = 8.0;
  policy.jitter_fraction = 0.5;
  for (uint64_t op = 0; op < 50; ++op) {
    const double backoff = policy.BackoffMs(1, op);
    EXPECT_GE(backoff, 4.0);
    EXPECT_LE(backoff, 8.0);
  }
}

TEST(RetryTransientTest, RetriesOnlyUnavailable) {
  RetryPolicy fast;
  fast.base_backoff_ms = 0.0;  // no sleeping in tests
  fast.max_backoff_ms = 0.0;

  // Transient-then-success: absorbed.
  int calls = 0;
  RetryStats stats;
  Status status = RetryTransient(
      fast, 1,
      [&calls] {
        return ++calls < 3 ? Status::Unavailable("blip") : Status::Ok();
      },
      &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.transient_faults, 2);

  // Permanent error: returned immediately, no retry.
  calls = 0;
  status = RetryTransient(fast, 1, [&calls] {
    ++calls;
    return Status::IoError("gone");
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 1);

  // All attempts transient: budget exhausted, last kUnavailable surfaces.
  calls = 0;
  status = RetryTransient(fast, 1, [&calls] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, fast.max_attempts);
}

// -------------------------------------------------------------- file_io

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tklus_fileio_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(FileIoTest, RoundTripsPayload) {
  const std::string payload("some artifact bytes\0with zeros", 30);
  ASSERT_TRUE(fileio::WriteFileAtomic(Path("a.bin"), payload).ok());
  auto read = fileio::ReadFileVerified(Path("a.bin"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  // No temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(Path("a.bin.tmp")));
}

TEST_F(FileIoTest, MissingFileIsNotFound) {
  auto read = fileio::ReadFileVerified(Path("missing.bin"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(FileIoTest, AnySingleByteFlipIsCorruption) {
  const std::string payload(300, 'p');
  ASSERT_TRUE(fileio::WriteFileAtomic(Path("b.bin"), payload).ok());
  const auto size = std::filesystem::file_size(Path("b.bin"));
  // Flip one byte at a sample of positions across payload and footer.
  for (uint64_t pos = 0; pos < size; pos += 37) {
    std::string bytes;
    {
      std::ifstream in(Path("b.bin"), std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    bytes[pos] ^= 0x40;
    {
      std::ofstream out(Path("b.bin"), std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    auto read = fileio::ReadFileVerified(Path("b.bin"));
    ASSERT_FALSE(read.ok()) << "flip at " << pos << " went undetected";
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
    // Restore for the next position.
    bytes[pos] ^= 0x40;
    std::ofstream out(Path("b.bin"), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_TRUE(fileio::ReadFileVerified(Path("b.bin")).ok());
}

TEST_F(FileIoTest, TruncationIsCorruption) {
  ASSERT_TRUE(fileio::WriteFileAtomic(Path("c.bin"), "0123456789").ok());
  std::filesystem::resize_file(Path("c.bin"), 12);  // chop into the footer
  auto read = fileio::ReadFileVerified(Path("c.bin"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST_F(FileIoTest, RewriteReplacesAtomically) {
  ASSERT_TRUE(fileio::WriteFileAtomic(Path("d.bin"), "old").ok());
  ASSERT_TRUE(fileio::WriteFileAtomic(Path("d.bin"), "new contents").ok());
  auto read = fileio::ReadFileVerified(Path("d.bin"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "new contents");
}

}  // namespace
}  // namespace tklus
