# Empty compiler generated dependencies file for tklus_core.
# This may be replaced when dependencies are built.
