#include "core/federation.h"

#include <algorithm>

namespace tklus {

Result<FederatedResult> FederatedEngine::Query(
    const TkLusQuery& query) const {
  if (platforms_.empty()) {
    return Status::InvalidArgument("no platforms registered");
  }
  FederatedResult result;
  Status first_error = Status::Ok();
  for (const Platform& platform : platforms_) {
    Result<QueryResult> partial = platform.engine->Query(query);
    if (!partial.ok()) {
      if (options_.strict) return partial.status();
      // Degrade: record the failure, keep merging the survivors.
      if (first_error.ok()) first_error = partial.status();
      result.outcomes.push_back(
          PlatformOutcome{platform.name, partial.status(), QueryStats{}});
      result.platform_stats.emplace_back();
      result.degraded = true;
      continue;
    }
    result.outcomes.push_back(
        PlatformOutcome{platform.name, Status::Ok(), partial->stats});
    result.platform_stats.push_back(partial->stats);
    for (const RankedUser& user : partial->users) {
      result.users.push_back(
          FederatedUser{platform.name, user.uid, user.score});
    }
  }
  if (result.platforms_ok() == 0) {
    // Nothing survived: a degraded-but-empty result would be
    // indistinguishable from "no local users"; fail loudly instead.
    return Status::Unavailable("all platforms failed: " +
                               first_error.message());
  }
  std::sort(result.users.begin(), result.users.end(),
            [](const FederatedUser& a, const FederatedUser& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.platform != b.platform) return a.platform < b.platform;
              return a.uid < b.uid;
            });
  if (static_cast<int>(result.users.size()) > query.k) {
    result.users.resize(query.k);
  }
  return result;
}

}  // namespace tklus
