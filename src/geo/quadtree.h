#ifndef TKLUS_GEO_QUADTREE_H_
#define TKLUS_GEO_QUADTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/point.h"

namespace tklus {

// A point-region quadtree (Finkel & Bentley [9]) — the structure the
// paper's geohash encoding is derived from (§IV-B.1). Each internal node
// splits its bounding square along both axes; each split quadrant carries
// the 2-bit code the paper describes (00 upper-left, 10 upper-right,
// 11 bottom-right, 01 bottom-left). Used as an in-memory spatial index
// for validation and for the naive baselines.
class Quadtree {
 public:
  struct Entry {
    GeoPoint point;
    uint64_t id = 0;
  };

  // `capacity`: max entries per leaf before a split; `max_depth` caps
  // subdivision (points in an overfull max-depth leaf stay together).
  explicit Quadtree(BoundingBox bounds = BoundingBox{},
                    int capacity = 32, int max_depth = 20);
  ~Quadtree();

  Quadtree(const Quadtree&) = delete;
  Quadtree& operator=(const Quadtree&) = delete;
  Quadtree(Quadtree&&) = default;
  Quadtree& operator=(Quadtree&&) = default;

  // Inserts a point. Points outside the root bounds are clamped into it.
  void Insert(const GeoPoint& p, uint64_t id);

  // All entries within `radius_km` (equirectangular metric) of `center`.
  std::vector<Entry> RangeQuery(const GeoPoint& center,
                                double radius_km) const;

  // All entries inside `box`.
  std::vector<Entry> BoxQuery(const BoundingBox& box) const;

  size_t size() const { return size_; }
  int depth() const;
  size_t node_count() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  BoundingBox bounds_;
  int capacity_;
  int max_depth_;
  size_t size_ = 0;
};

}  // namespace tklus

#endif  // TKLUS_GEO_QUADTREE_H_
