// Quickstart: build a TkLusEngine over a handful of tweets and run one
// top-k local user search. Mirrors the README's 5-minute tour.
#include <cstdio>

#include "core/engine.h"
#include "model/dataset.h"

using tklus::Dataset;
using tklus::GeoPoint;
using tklus::Post;
using tklus::TkLusEngine;
using tklus::TkLusQuery;

int main() {
  // 1. Assemble a dataset: (sid, uid, location, text [, reply linkage]).
  Dataset tweets;
  const auto add = [&tweets](int64_t sid, int64_t uid, double lat, double lon,
                             const char* text, int64_t rsid = tklus::kNoId,
                             int64_t ruid = tklus::kNoId) {
    Post p;
    p.sid = sid;
    p.uid = uid;
    p.location = GeoPoint{lat, lon};
    p.text = text;
    p.rsid = rsid;
    p.ruid = ruid;
    tweets.Add(std::move(p));
  };
  add(1, 101, 43.6839, -79.3736, "amazing espresso at this little cafe");
  add(2, 102, 43.6901, -79.3821, "best cafe in the city, trust me");
  add(3, 103, 43.6510, -79.3470, "cafe closed today, sad");
  add(4, 201, 43.6845, -79.3750, "so true!", /*rsid=*/2, /*ruid=*/102);
  add(5, 202, 43.6850, -79.3730, "agree, love that cafe", 2, 102);
  add(6, 104, 40.7128, -74.0060, "new york cafe crawl");  // out of range

  // 2. Build the engine: metadata DB + B+-trees, MapReduce-built hybrid
  //    geohash/keyword index in a simulated DFS, offline score bounds.
  auto engine = TkLusEngine::Build(tweets);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // 3. Ask: who are the top-2 local users for "cafe" within 10 km of
  //    downtown Toronto?
  TkLusQuery query;
  query.location = GeoPoint{43.6839128037, -79.37356590};
  query.radius_km = 10.0;
  query.keywords = {"cafe"};
  query.k = 2;
  query.ranking = tklus::Ranking::kSum;

  auto result = (*engine)->Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("top-%d local users for \"cafe\" near downtown Toronto:\n",
              query.k);
  for (const auto& user : result->users) {
    std::printf("  user %lld  score %.4f\n",
                static_cast<long long>(user.uid), user.score);
  }
  std::printf(
      "stats: %zu cover cells, %zu candidates, %zu threads built, "
      "%.2f ms\n",
      result->stats.cover_cells, result->stats.candidates,
      result->stats.threads_built, result->stats.elapsed_ms);
  return 0;
}
