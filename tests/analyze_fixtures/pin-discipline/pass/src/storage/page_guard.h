// Fixture copy of the allowlisted guard header: the raw pin calls below
// are the one sanctioned home of the naked API and must NOT fire.
#ifndef FIXTURE_PAGE_GUARD_H_
#define FIXTURE_PAGE_GUARD_H_

#include "storage/buffer_pool.h"

namespace tklus {

class PageGuard {
 public:
  static Result<PageGuard> Fetch(BufferPool* pool, PageId id) {
    Result<Page*> page = pool->FetchPage(id);
    if (!page.ok()) return page.status();
    return PageGuard(pool, *page);
  }
  ~PageGuard() { pool_->UnpinPage(page_->page_id(), dirty_).IgnoreError(); }

 private:
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  BufferPool* pool_;
  Page* page_;
  bool dirty_ = false;
};

}  // namespace tklus

#endif  // FIXTURE_PAGE_GUARD_H_
