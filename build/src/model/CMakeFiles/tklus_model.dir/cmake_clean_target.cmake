file(REMOVE_RECURSE
  "libtklus_model.a"
)
