#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/fault_injector.h"
#include "dfs/dfs.h"

namespace tklus {
namespace {

TEST(DfsTest, AppendAndReadAll) {
  SimulatedDfs dfs;
  ASSERT_TRUE(dfs.Append("a/b.txt", "hello ").ok());
  ASSERT_TRUE(dfs.Append("a/b.txt", "world").ok());
  Result<std::string> content = dfs.ReadAll("a/b.txt");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello world");
  Result<uint64_t> size = dfs.FileSize("a/b.txt");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
}

TEST(DfsTest, ReadAtOffsets) {
  SimulatedDfs::Options opts;
  opts.block_size = 8;  // force multi-block files
  SimulatedDfs dfs(opts);
  const std::string payload = "0123456789abcdefghijklmnopqrstuvwxyz";
  ASSERT_TRUE(dfs.Append("f", payload).ok());
  std::string out;
  ASSERT_TRUE(dfs.ReadAt("f", 0, 5, &out).ok());
  EXPECT_EQ(out, "01234");
  ASSERT_TRUE(dfs.ReadAt("f", 6, 10, &out).ok());
  EXPECT_EQ(out, payload.substr(6, 10));
  ASSERT_TRUE(dfs.ReadAt("f", 30, 6, &out).ok());
  EXPECT_EQ(out, payload.substr(30, 6));
}

TEST(DfsTest, ReadPastEofRejected) {
  SimulatedDfs dfs;
  ASSERT_TRUE(dfs.Append("f", "abc").ok());
  std::string out;
  EXPECT_EQ(dfs.ReadAt("f", 2, 5, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dfs.ReadAt("missing", 0, 1, &out).code(), StatusCode::kNotFound);
}

TEST(DfsTest, BlocksRoundRobinAcrossNodes) {
  SimulatedDfs::Options opts;
  opts.block_size = 4;
  opts.num_data_nodes = 3;
  SimulatedDfs dfs(opts);
  ASSERT_TRUE(dfs.Append("f", std::string(36, 'x')).ok());  // 9 blocks
  const auto& nodes = dfs.node_stats();
  ASSERT_EQ(nodes.size(), 3u);
  for (const auto& node : nodes) {
    EXPECT_EQ(node.blocks_stored, 3u);
    EXPECT_EQ(node.bytes_stored, 12u);
  }
  EXPECT_EQ(dfs.total_bytes(), 36u);
}

TEST(DfsTest, SeekAccounting) {
  SimulatedDfs::Options opts;
  opts.block_size = 4;
  opts.num_data_nodes = 1;
  SimulatedDfs dfs(opts);
  ASSERT_TRUE(dfs.Append("f", std::string(40, 'y')).ok());
  std::string out;
  // Sequential whole-file read: first block is a seek, the rest are not.
  ASSERT_TRUE(dfs.ReadAt("f", 0, 40, &out).ok());
  EXPECT_EQ(dfs.node_stats()[0].block_reads, 10u);
  EXPECT_EQ(dfs.node_stats()[0].seeks, 1u);
  dfs.ResetStats();
  // Two distant random reads: two seeks.
  ASSERT_TRUE(dfs.ReadAt("f", 0, 2, &out).ok());
  ASSERT_TRUE(dfs.ReadAt("f", 36, 2, &out).ok());
  EXPECT_EQ(dfs.node_stats()[0].seeks, 2u);
}

TEST(DfsTest, ListByPrefix) {
  SimulatedDfs dfs;
  ASSERT_TRUE(dfs.Append("index/part-00000", "a").ok());
  ASSERT_TRUE(dfs.Append("index/part-00001", "b").ok());
  ASSERT_TRUE(dfs.Append("other/file", "c").ok());
  const auto files = dfs.List("index/");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "index/part-00000");
  EXPECT_EQ(files[1], "index/part-00001");
  EXPECT_EQ(dfs.List().size(), 3u);
  EXPECT_EQ(dfs.file_count(), 3u);
}

TEST(DfsTest, DeleteReclaimsBytes) {
  SimulatedDfs dfs;
  ASSERT_TRUE(dfs.Append("f", "12345").ok());
  EXPECT_EQ(dfs.total_bytes(), 5u);
  ASSERT_TRUE(dfs.Delete("f").ok());
  EXPECT_EQ(dfs.total_bytes(), 0u);
  EXPECT_FALSE(dfs.Exists("f"));
  EXPECT_EQ(dfs.Delete("f").code(), StatusCode::kNotFound);
}

TEST(DfsTest, EmptyAppendIsNoop) {
  SimulatedDfs dfs;
  ASSERT_TRUE(dfs.Append("f", "").ok());
  // File exists (namespace entry) with zero size.
  EXPECT_TRUE(dfs.Exists("f"));
  Result<uint64_t> size = dfs.FileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

// ---------------------------------------------------------- fault model

TEST(DfsFaultTest, DownNodeMakesItsBlocksUnavailable) {
  SimulatedDfs::Options opts;
  opts.block_size = 4;
  opts.num_data_nodes = 2;
  SimulatedDfs dfs(opts);
  // Blocks alternate node 0, 1, 0, 1: "aaaa" on 0, "bbbb" on 1, ...
  ASSERT_TRUE(dfs.Append("f", "aaaabbbbcccc").ok());

  ASSERT_TRUE(dfs.SetNodeDown(1, true).ok());
  EXPECT_TRUE(dfs.node_is_down(1));
  // A read confined to node-0 blocks still works.
  std::string out;
  EXPECT_TRUE(dfs.ReadAt("f", 0, 4, &out).ok());
  EXPECT_EQ(out, "aaaa");
  // A read touching a node-1 block is unavailable, not an I/O error.
  Status blocked = dfs.ReadAt("f", 4, 4, &out);
  EXPECT_EQ(blocked.code(), StatusCode::kUnavailable);

  // Recovery restores the data unchanged.
  ASSERT_TRUE(dfs.SetNodeDown(1, false).ok());
  ASSERT_TRUE(dfs.ReadAt("f", 0, 12, &out).ok());
  EXPECT_EQ(out, "aaaabbbbcccc");

  EXPECT_FALSE(dfs.SetNodeDown(7, true).ok());  // no such node
}

TEST(DfsFaultTest, AtRestCorruptionFailsChecksum) {
  SimulatedDfs dfs;
  FaultInjector injector(/*seed=*/31);
  dfs.set_fault_injector(&injector);
  ASSERT_TRUE(dfs.Append("f", "some postings bytes").ok());

  std::string out;
  ASSERT_TRUE(dfs.ReadAt("f", 0, 4, &out).ok());

  // Corrupt the stored block: every subsequent read of it fails with
  // kCorruption (the damage is at rest, not transient).
  injector.FailNext(faults::kDfsRead, FaultKind::kCorruption, 1);
  EXPECT_EQ(dfs.ReadAt("f", 0, 4, &out).code(), StatusCode::kCorruption);
  EXPECT_EQ(dfs.ReadAt("f", 0, 4, &out).code(), StatusCode::kCorruption);
}

TEST(DfsFaultTest, InjectedReadFaultsCarryTheirCodes) {
  SimulatedDfs dfs;
  FaultInjector injector(/*seed=*/33);
  dfs.set_fault_injector(&injector);
  ASSERT_TRUE(dfs.Append("f", "payload").ok());

  std::string out;
  injector.FailNext(faults::kDfsRead, FaultKind::kTransient, 1);
  EXPECT_EQ(dfs.ReadAt("f", 0, 7, &out).code(), StatusCode::kUnavailable);
  injector.FailNext(faults::kDfsRead, FaultKind::kPermanent, 1);
  EXPECT_EQ(dfs.ReadAt("f", 0, 7, &out).code(), StatusCode::kIoError);
  EXPECT_TRUE(dfs.ReadAt("f", 0, 7, &out).ok());
  EXPECT_EQ(out, "payload");
}

TEST(DfsFaultTest, LoadResetsDownNodesAndChecksums) {
  SimulatedDfs::Options opts;
  opts.block_size = 8;
  SimulatedDfs dfs(opts);
  ASSERT_TRUE(dfs.Append("f", "0123456789abcdef").ok());
  ASSERT_TRUE(dfs.SetNodeDown(0, true).ok());

  std::stringstream buffer;
  ASSERT_TRUE(dfs.Save(buffer).ok());
  SimulatedDfs restored;
  ASSERT_TRUE(restored.Load(buffer).ok());
  // Node state is runtime-only: a restored DFS starts healthy, and the
  // re-derived block checksums verify.
  for (int n = 0; n < restored.options().num_data_nodes; ++n) {
    EXPECT_FALSE(restored.node_is_down(n));
  }
  std::string out;
  ASSERT_TRUE(restored.ReadAt("f", 0, 16, &out).ok());
  EXPECT_EQ(out, "0123456789abcdef");
}

}  // namespace
}  // namespace tklus
