file(REMOVE_RECURSE
  "CMakeFiles/batch_append_test.dir/batch_append_test.cc.o"
  "CMakeFiles/batch_append_test.dir/batch_append_test.cc.o.d"
  "batch_append_test"
  "batch_append_test.pdb"
  "batch_append_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_append_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
