#include "core/cover.h"

#include "geo/circle_cover.h"

namespace tklus {

std::vector<std::string> ComputeCover(const TkLusQuery& query,
                                      int geohash_length) {
  return GeohashCircleCover(query.location, query.radius_km, geohash_length);
}

}  // namespace tklus
