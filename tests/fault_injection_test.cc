#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/tweet_generator.h"
#include "dfs/dfs.h"

namespace tklus {
namespace {

using datagen::TweetGenerator;

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TweetGenerator::Options gen;
    gen.num_users = 200;
    gen.num_tweets = 5000;
    gen.num_cities = 3;
    corpus_ = new datagen::GeneratedCorpus(TweetGenerator::Generate(gen));
    auto engine = TkLusEngine::Build(corpus_->dataset);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete corpus_;
    engine_ = nullptr;
    corpus_ = nullptr;
  }

  static TkLusQuery HotelQuery() {
    TkLusQuery q;
    q.location = corpus_->city_centers[0];
    q.radius_km = 12.0;
    q.keywords = {"hotel"};
    q.k = 5;
    return q;
  }

  static datagen::GeneratedCorpus* corpus_;
  static TkLusEngine* engine_;
};

datagen::GeneratedCorpus* FaultInjectionTest::corpus_ = nullptr;
TkLusEngine* FaultInjectionTest::engine_ = nullptr;

TEST_F(FaultInjectionTest, DfsReadFaultSurfacesAsIoError) {
  // Sanity: the query works.
  auto ok_result = engine_->Query(HotelQuery());
  ASSERT_TRUE(ok_result.ok());
  ASSERT_FALSE(ok_result->users.empty());

  // A dead "data node" fails the postings fetch; the error propagates as a
  // Status, not a crash or a silent empty result.
  engine_->dfs().InjectReadFaults(1);
  auto faulty = engine_->Query(HotelQuery());
  ASSERT_FALSE(faulty.ok());
  EXPECT_EQ(faulty.status().code(), StatusCode::kIoError);

  // The node "recovers": the same query succeeds again with the same
  // answer.
  auto recovered = engine_->Query(HotelQuery());
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->users.size(), ok_result->users.size());
  for (size_t i = 0; i < recovered->users.size(); ++i) {
    EXPECT_EQ(recovered->users[i].uid, ok_result->users[i].uid);
  }
}

TEST_F(FaultInjectionTest, SustainedFaultsFailEveryQuery) {
  engine_->dfs().InjectReadFaults(100);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(engine_->Query(HotelQuery()).ok());
  }
  engine_->dfs().InjectReadFaults(0);
  // Drain any leftovers injected above (0 resets the counter).
  EXPECT_TRUE(engine_->Query(HotelQuery()).ok());
}

TEST_F(FaultInjectionTest, NoBufferPoolPinLeaksAcrossQueries) {
  // Every metadata page pinned during query processing must be unpinned,
  // including on error paths.
  for (int i = 0; i < 5; ++i) {
    (void)engine_->Query(HotelQuery());
    EXPECT_EQ(engine_->metadata_db().buffer_pool().PinnedCount(), 0u);
  }
  engine_->dfs().InjectReadFaults(1);
  (void)engine_->Query(HotelQuery());
  EXPECT_EQ(engine_->metadata_db().buffer_pool().PinnedCount(), 0u);
}

TEST_F(FaultInjectionTest, TweetSearchAlsoPropagatesFaults) {
  engine_->dfs().InjectReadFaults(1);
  auto result = engine_->QueryTweets(HotelQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_TRUE(engine_->QueryTweets(HotelQuery()).ok());
}

}  // namespace
}  // namespace tklus
