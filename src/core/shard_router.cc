#include "core/shard_router.h"

#include <cstdint>

#include "geo/geohash.h"

namespace tklus {

namespace {

// FNV-1a 64-bit: stable across platforms and processes (unlike
// std::hash), which matters because cell ownership is baked into every
// shard's on-disk state.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

int ShardRouter::OwnerOfCell(const std::string& cell) const {
  return static_cast<int>(Fnv1a(cell) % static_cast<uint64_t>(num_shards_));
}

int ShardRouter::OwnerOfPost(const Post& post, int geohash_length) const {
  if (!post.HasLocation()) {
    return static_cast<int>(static_cast<uint64_t>(post.sid) %
                            static_cast<uint64_t>(num_shards_));
  }
  return OwnerOfCell(geohash::Encode(post.location, geohash_length));
}

std::vector<std::vector<std::string>> ShardRouter::PartitionCells(
    const std::vector<std::string>& cells) const {
  std::vector<std::vector<std::string>> parts(num_shards_);
  for (const std::string& cell : cells) {
    parts[OwnerOfCell(cell)].push_back(cell);
  }
  return parts;
}

std::vector<Dataset> ShardRouter::PartitionPosts(const Dataset& posts,
                                                 int geohash_length) const {
  std::vector<Dataset> parts(num_shards_);
  for (const Post& post : posts.posts()) {
    parts[OwnerOfPost(post, geohash_length)].Add(post);
  }
  return parts;
}

}  // namespace tklus
