# Empty compiler generated dependencies file for bench_fig10_multi_keyword.
# This may be replaced when dependencies are built.
