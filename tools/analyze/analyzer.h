#ifndef TKLUS_TOOLS_ANALYZE_ANALYZER_H_
#define TKLUS_TOOLS_ANALYZE_ANALYZER_H_

#include <string>
#include <vector>

#include "analyze/rules.h"
#include "common/status.h"

namespace tklus::analyze {

// Scan configuration: a root directory, scan paths relative to it, and
// an optional explicit layering manifest. When `manifest` is empty the
// analyzer looks for `<root>/layers.conf` (fixture roots), then
// `<root>/tools/analyze/layers.conf` (the real tree).
struct AnalyzerOptions {
  std::string root = ".";
  std::vector<std::string> paths;  // default: {"src"}
  std::string manifest;
};

// Loads `path` as a layering manifest: `module: dep dep ...` lines,
// `#` comments. Declaring a module with no deps is `module:`.
Result<AnalyzerContext> LoadManifest(const std::string& path);

// Lexes every .h/.cc/.cpp under the scan paths (sorted, so output is
// deterministic) and runs the full rule set over each file.
// Diagnostics come back sorted by (path, line, rule).
Result<std::vector<Diagnostic>> RunAnalysis(const AnalyzerOptions& options);

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_ANALYZER_H_
