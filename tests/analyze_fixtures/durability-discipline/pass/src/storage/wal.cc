// Fixture: storage/wal.cc is inside the audited durability layer — the
// raw syscall below is the implementation of the discipline, not a
// violation of it.
namespace tklus {

bool AppendRaw(int fd, const char* data, unsigned long len) {
  return ::write(fd, data, len) == static_cast<long>(len);
}

}  // namespace tklus
