#ifndef TKLUS_DATAGEN_RELEVANCE_ORACLE_H_
#define TKLUS_DATAGEN_RELEVANCE_ORACLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/query.h"
#include "datagen/tweet_generator.h"
#include "geo/point.h"
#include "text/tokenizer.h"

namespace tklus {
namespace datagen {

// Simulates the §VI-B6 user study. The paper's six judges rated each
// returned (userId, tweet content) line for relevance to the query; their
// precision is high at small radii and decays as the radius grows,
// "justifying the distance score". We model the judges' notion of a
// *relevant local user* as: the user has at least `min_on_topic_posts`
// posts mentioning a query keyword within `locality_km` of the query
// location — i.e. demonstrated repeated, nearby engagement with the topic
// (a planted expert always qualifies; a drive-by single mention does not).
// Judged relevance follows the paper's protocol: `judges_per_line`
// independent judges each agree with ground truth with probability
// `judge_accuracy`, and a user counts as relevant with >=
// `votes_required` positive votes ("considered relevant twice or even
// more").
class RelevanceOracle {
 public:
  struct Options {
    uint64_t seed = 11;
    double judge_accuracy = 0.85;
    int judges_per_line = 4;
    int votes_required = 2;
    // What the judges consider "local": on-topic posts within this
    // distance of the query location.
    double locality_km = 12.0;
    int min_on_topic_posts = 2;
  };

  RelevanceOracle(const GeneratedCorpus* corpus, TokenizerOptions tokenizer,
                  Options options);
  explicit RelevanceOracle(const GeneratedCorpus* corpus)
      : RelevanceOracle(corpus, TokenizerOptions{}, Options{}) {}

  // Ground truth (no judge noise).
  bool TrulyRelevant(UserId uid, const TkLusQuery& query) const;

  // One judged line (stochastic; deterministic given construction seed and
  // call sequence).
  bool JudgedRelevant(UserId uid, const TkLusQuery& query);

  // Fraction of `users` judged relevant for `query` — the Fig. 13 metric.
  double Precision(const std::vector<UserId>& users, const TkLusQuery& query);

  // Noise-free precision, for tests.
  double TruePrecision(const std::vector<UserId>& users,
                       const TkLusQuery& query) const;

 private:
  const GeneratedCorpus* corpus_;
  Tokenizer tokenizer_;
  Options options_;
  Rng rng_;
  // uid -> (topic stem, post location) for every topic mention, built once
  // from the corpus text.
  std::unordered_map<UserId, std::vector<std::pair<std::string, GeoPoint>>>
      topic_posts_;
};

}  // namespace datagen
}  // namespace tklus

#endif  // TKLUS_DATAGEN_RELEVANCE_ORACLE_H_
