#include <gtest/gtest.h>

#include <filesystem>

#include "model/dataset.h"
#include "social/social_graph.h"
#include "social/thread_builder.h"
#include "storage/metadata_db.h"

namespace tklus {
namespace {

Post MakePost(TweetId sid, UserId uid, const std::string& text,
              TweetId rsid = kNoId, UserId ruid = kNoId, bool fwd = false) {
  Post p;
  p.sid = sid;
  p.uid = uid;
  p.text = text;
  p.rsid = rsid;
  p.ruid = ruid;
  p.is_forward = fwd;
  return p;
}

// The Fig. 2 thread: p1 with 3 children; p2 has 2 children, p3 has 1,
// p4 has 1 (level 3 = 4); two level-4 tweets.
Dataset Figure2Dataset() {
  Dataset ds;
  ds.Add(MakePost(1, 1, "hotel root"));
  ds.Add(MakePost(2, 2, "re", 1, 1));
  ds.Add(MakePost(3, 3, "re", 1, 1));
  ds.Add(MakePost(4, 4, "re", 1, 1, /*fwd=*/true));
  ds.Add(MakePost(5, 5, "re", 2, 2));
  ds.Add(MakePost(6, 6, "re", 2, 2));
  ds.Add(MakePost(7, 7, "re", 3, 3));
  ds.Add(MakePost(8, 8, "re", 4, 4));
  ds.Add(MakePost(9, 9, "re", 5, 5));
  ds.Add(MakePost(10, 10, "re", 8, 8));
  return ds;
}

TEST(SocialGraphTest, EdgesAndPostMaps) {
  const Dataset ds = Figure2Dataset();
  const SocialGraph g = SocialGraph::Build(ds);
  EXPECT_EQ(g.user_count(), 10u);
  // u2 replied to u1 in post 2.
  EXPECT_TRUE(g.HasReplyEdge(2, 1));
  ASSERT_EQ(g.ReplyPosts(2, 1).size(), 1u);
  EXPECT_EQ(g.ReplyPosts(2, 1)[0], 2);
  // u4 forwarded u1's post 4.
  EXPECT_TRUE(g.HasForwardEdge(4, 1));
  EXPECT_FALSE(g.HasReplyEdge(4, 1));
  // No edge the other way.
  EXPECT_FALSE(g.HasReplyEdge(1, 2));
  EXPECT_TRUE(g.ReplyPosts(1, 2).empty());
}

TEST(SocialGraphTest, MultiplePostsOnOneEdge) {
  Dataset ds;
  ds.Add(MakePost(1, 1, "root a"));
  ds.Add(MakePost(2, 1, "root b"));
  ds.Add(MakePost(3, 2, "re", 1, 1));
  ds.Add(MakePost(4, 2, "re", 2, 1));
  const SocialGraph g = SocialGraph::Build(ds);
  EXPECT_EQ(g.reply_edge_count(), 1u);
  EXPECT_EQ(g.ReplyPosts(2, 1).size(), 2u);
}

TEST(SocialGraphTest, ChildrenMap) {
  const SocialGraph g = SocialGraph::Build(Figure2Dataset());
  const auto& children = g.children();
  ASSERT_EQ(children.at(1).size(), 3u);
  EXPECT_EQ(children.at(2).size(), 2u);
  EXPECT_EQ(children.count(10), 0u);
}

TEST(SocialGraphTest, ReplyNeighbors) {
  Dataset ds;
  ds.Add(MakePost(1, 1, "a"));
  ds.Add(MakePost(2, 2, "b"));
  ds.Add(MakePost(3, 3, "re", 1, 1));
  ds.Add(MakePost(4, 3, "re", 2, 2));
  const SocialGraph g = SocialGraph::Build(ds);
  const auto neighbors = g.ReplyNeighbors(3);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0], 1);
  EXPECT_EQ(neighbors[1], 2);
}

TEST(ThreadPopularityTest, PaperFigure2Example) {
  // Levels 1,3,4,2 -> 3/2 + 4/3 + 2/4 = 10/3.
  ThreadShape shape;
  shape.level_sizes = {1, 3, 4, 2};
  EXPECT_NEAR(ThreadPopularity(shape, 0.1), 10.0 / 3.0, 1e-12);
}

TEST(ThreadPopularityTest, SingletonGetsEpsilon) {
  ThreadShape shape;
  shape.level_sizes = {1};
  EXPECT_DOUBLE_EQ(ThreadPopularity(shape, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(ThreadPopularity(shape, 0.5), 0.5);
}

TEST(ThreadPopularityTest, DeeperLevelsDiscounted) {
  ThreadShape shallow, deep;
  shallow.level_sizes = {1, 10};
  deep.level_sizes = {1, 0, 0, 0, 0, 10};
  // Same 10 tweets, but at level 6 they are worth 10/6 < 10/2.
  EXPECT_GT(ThreadPopularity(shallow, 0.1), ThreadPopularity(deep, 0.1));
}

TEST(BuildShapeInMemoryTest, MatchesFigure2) {
  const SocialGraph g = SocialGraph::Build(Figure2Dataset());
  const ThreadShape shape = BuildShapeInMemory(g.children(), 1, 10);
  const std::vector<uint64_t> expected = {1, 3, 4, 2};
  EXPECT_EQ(shape.level_sizes, expected);
  EXPECT_EQ(shape.total_tweets(), 10u);
  EXPECT_EQ(shape.height(), 4);
}

TEST(BuildShapeInMemoryTest, DepthCapTruncates) {
  const SocialGraph g = SocialGraph::Build(Figure2Dataset());
  const ThreadShape shape = BuildShapeInMemory(g.children(), 1, 2);
  const std::vector<uint64_t> expected = {1, 3};
  EXPECT_EQ(shape.level_sizes, expected);
}

class ThreadBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("tklus_threadbuilder_" + std::to_string(::getpid()) + ".db"))
                .string();
    auto db = MetadataDb::Create(path_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    const Dataset figure2 = Figure2Dataset();
    for (const Post& p : figure2.posts()) {
      ASSERT_TRUE(db_->Insert(TweetMeta{p.sid, p.uid, 0, 0, p.ruid, p.rsid})
                      .ok());
    }
  }
  void TearDown() override { db_.reset(); std::filesystem::remove(path_); }

  std::string path_;
  std::unique_ptr<MetadataDb> db_;
};

TEST_F(ThreadBuilderTest, MatchesInMemoryOracle) {
  ThreadBuilder builder(db_.get(), ThreadBuilder::Options{10, 0.1});
  Result<ThreadShape> shape = builder.BuildShape(1);
  ASSERT_TRUE(shape.ok());
  const std::vector<uint64_t> expected = {1, 3, 4, 2};
  EXPECT_EQ(shape->level_sizes, expected);
  Result<double> popularity = builder.Popularity(1);
  ASSERT_TRUE(popularity.ok());
  EXPECT_NEAR(*popularity, 10.0 / 3.0, 1e-12);
}

TEST_F(ThreadBuilderTest, SingletonThread) {
  ThreadBuilder builder(db_.get(), ThreadBuilder::Options{10, 0.25});
  Result<double> popularity = builder.Popularity(10);  // leaf tweet
  ASSERT_TRUE(popularity.ok());
  EXPECT_DOUBLE_EQ(*popularity, 0.25);
}

TEST_F(ThreadBuilderTest, DepthCapLimitsIo) {
  // With depth 2, only one SELECT round runs (for the root).
  ThreadBuilder builder(db_.get(), ThreadBuilder::Options{2, 0.1});
  Result<ThreadShape> shape = builder.BuildShape(1);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->height(), 2);
  EXPECT_NEAR(ThreadPopularity(*shape, 0.1), 3.0 / 2.0, 1e-12);
}

TEST_F(ThreadBuilderTest, SubThread) {
  ThreadBuilder builder(db_.get(), ThreadBuilder::Options{10, 0.1});
  // Thread rooted at tweet 2: children {5,6}, then {9}.
  Result<ThreadShape> shape = builder.BuildShape(2);
  ASSERT_TRUE(shape.ok());
  const std::vector<uint64_t> expected = {1, 2, 1};
  EXPECT_EQ(shape->level_sizes, expected);
}

}  // namespace
}  // namespace tklus
