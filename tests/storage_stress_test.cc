#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "common/rng.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/metadata_db.h"
#include "storage/table_heap.h"

namespace tklus {
namespace {

class StressTempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tklus_stress_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

// Fuzz: interleaved inserts and removes against a std::multimap model.
TEST_F(StressTempDir, BPlusTreeFuzzAgainstModel) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 128);
  Result<BPlusTree> tree_res = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree_res.ok());
  BPlusTree& tree = *tree_res;
  std::multimap<int64_t, uint64_t> model;
  Rng rng(55);
  for (int op = 0; op < 30000; ++op) {
    const int64_t key = rng.UniformInt(int64_t{0}, int64_t{800});
    if (rng.Bernoulli(0.8) || model.empty()) {
      const uint64_t value = rng.Next() % 1000;
      ASSERT_TRUE(tree.Insert(key, value).ok());
      model.emplace(key, value);
    } else {
      // Remove one specific (key, value) if present in the model.
      const auto it = model.lower_bound(key);
      if (it != model.end()) {
        Result<bool> removed = tree.Remove(it->first, it->second);
        ASSERT_TRUE(removed.ok());
        EXPECT_TRUE(*removed);
        model.erase(it);
      }
    }
    if (op % 3000 == 0) {
      Result<uint64_t> count = tree.CountEntries();
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(*count, model.size());
    }
  }
  // Full comparison at the end.
  Result<std::vector<std::pair<int64_t, uint64_t>>> all =
      tree.Range(INT64_MIN, INT64_MAX);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), model.size());
  auto model_it = model.begin();
  std::multiset<uint64_t> tree_vals, model_vals;
  int64_t current_key = all->empty() ? 0 : all->front().first;
  // Per-key value multisets must match (order of duplicates within a key
  // may differ after removals).
  std::map<int64_t, std::multiset<uint64_t>> tree_by_key, model_by_key;
  for (const auto& [k, v] : *all) tree_by_key[k].insert(v);
  for (const auto& [k, v] : model) model_by_key[k].insert(v);
  EXPECT_EQ(tree_by_key, model_by_key);
  (void)model_it;
  (void)tree_vals;
  (void)model_vals;
  (void)current_key;
  // 30k interleaved ops later every PageGuard must have unpinned.
  EXPECT_EQ(pool.pinned_page_count(), 0u);
}

TEST_F(StressTempDir, BPlusTreeTinyPoolSpills) {
  // A pool barely larger than the tree height forces eviction on every
  // operation; correctness must be unaffected.
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 8);
  Result<BPlusTree> tree_res = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree_res.ok());
  BPlusTree& tree = *tree_res;
  const int n = 20000;
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Insert(k * 7 % n, static_cast<uint64_t>(k)).ok());
  }
  EXPECT_GT(pool.stats().evictions, 100u);
  Result<uint64_t> count = tree.CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<uint64_t>(n));
  for (int64_t k = 0; k < n; k += 997) {
    Result<std::optional<uint64_t>> got = tree.Get(k * 7 % n);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->has_value()) << k;
  }
  // With only 8 frames a single leaked pin would have exhausted the
  // pool long before 20k inserts; assert none survived anyway.
  EXPECT_EQ(pool.pinned_page_count(), 0u);
}

TEST_F(StressTempDir, HeapScanSeesInsertionOrder) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 16);
  Result<TableHeap> heap = TableHeap::Create(&pool, 16);
  ASSERT_TRUE(heap.ok());
  for (uint64_t i = 0; i < 5000; ++i) {
    char rec[16];
    std::memcpy(rec, &i, sizeof(i));
    std::memset(rec + 8, 0, 8);
    ASSERT_TRUE(heap->Insert(rec).ok());
  }
  uint64_t expected = 0;
  ASSERT_TRUE(heap
                  ->Scan([&](Rid, const char* rec) {
                    uint64_t v;
                    std::memcpy(&v, rec, sizeof(v));
                    EXPECT_EQ(v, expected++);
                  })
                  .ok());
  EXPECT_EQ(expected, 5000u);
  EXPECT_EQ(pool.pinned_page_count(), 0u);
}

TEST_F(StressTempDir, MetadataDbDeepThreadChains) {
  // A 1000-deep reply chain: SelectByRsid must step through each level.
  Result<std::unique_ptr<MetadataDb>> db = MetadataDb::Create(Path("meta"));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->Insert(TweetMeta{1, 1, 0, 0, TweetMeta::kNone,
                                     TweetMeta::kNone})
                  .ok());
  for (int64_t i = 2; i <= 1000; ++i) {
    ASSERT_TRUE((*db)->Insert(TweetMeta{i, i, 0, 0, i - 1, i - 1}).ok());
  }
  for (int64_t i = 1; i < 1000; i += 111) {
    Result<std::vector<TweetMeta>> replies = (*db)->SelectByRsid(i);
    ASSERT_TRUE(replies.ok());
    ASSERT_EQ(replies->size(), 1u);
    EXPECT_EQ(replies->front().sid, i + 1);
  }
  Result<int64_t> fanout = (*db)->MaxReplyFanout();
  ASSERT_TRUE(fanout.ok());
  EXPECT_EQ(*fanout, 1);
  EXPECT_EQ((*db)->buffer_pool().pinned_page_count(), 0u);
}

TEST_F(StressTempDir, MetadataDbWideFanout) {
  Result<std::unique_ptr<MetadataDb>> db = MetadataDb::Create(Path("meta"));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->Insert(TweetMeta{1, 1, 0, 0, TweetMeta::kNone,
                                     TweetMeta::kNone})
                  .ok());
  const int kFanout = 5000;
  for (int64_t i = 0; i < kFanout; ++i) {
    ASSERT_TRUE((*db)->Insert(TweetMeta{10 + i, 2 + i, 0, 0, 1, 1}).ok());
  }
  Result<std::vector<TweetMeta>> replies = (*db)->SelectByRsid(1);
  ASSERT_TRUE(replies.ok());
  EXPECT_EQ(replies->size(), static_cast<size_t>(kFanout));
  Result<int64_t> fanout = (*db)->MaxReplyFanout();
  ASSERT_TRUE(fanout.ok());
  EXPECT_EQ(*fanout, kFanout);
  EXPECT_EQ((*db)->buffer_pool().pinned_page_count(), 0u);
}

TEST_F(StressTempDir, BufferPoolFlushAllPersists) {
  PageId pids[32];
  {
    Result<DiskManager> dm = DiskManager::Open(Path("db"));
    ASSERT_TRUE(dm.ok());
    BufferPool pool(&*dm, 64);
    for (int i = 0; i < 32; ++i) {
      Result<Page*> p = pool.NewPage();
      ASSERT_TRUE(p.ok());
      (*p)->WriteAt<int>(0, i * 31);
      pids[i] = (*p)->page_id();
      ASSERT_TRUE(pool.UnpinPage(pids[i], true).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  // Reopen and verify all pages survived.
  Result<DiskManager> dm = DiskManager::Open(Path("db"), /*truncate=*/false);
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 64);
  for (int i = 0; i < 32; ++i) {
    Result<Page*> p = pool.FetchPage(pids[i]);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ((*p)->ReadAt<int>(0), i * 31);
    ASSERT_TRUE(pool.UnpinPage(pids[i], false).ok());
  }
}

TEST_F(StressTempDir, OpenMissingFileWithoutTruncateFails) {
  Result<DiskManager> dm =
      DiskManager::Open(Path("never_created.db"), /*truncate=*/false);
  ASSERT_FALSE(dm.ok());
  EXPECT_EQ(dm.status().code(), StatusCode::kNotFound);
  // And the failed open must not have created the file.
  EXPECT_FALSE(std::filesystem::exists(Path("never_created.db")));
}

TEST_F(StressTempDir, DiskManagerReopenKeepsPageCount) {
  {
    Result<DiskManager> dm = DiskManager::Open(Path("db"));
    ASSERT_TRUE(dm.ok());
    char buf[kPageSize] = {};
    for (int i = 0; i < 10; ++i) {
      const PageId pid = dm->AllocatePage();
      ASSERT_TRUE(dm->WritePage(pid, buf).ok());
    }
  }
  Result<DiskManager> dm = DiskManager::Open(Path("db"), /*truncate=*/false);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->num_pages(), 10);
  Result<DiskManager> truncated = DiskManager::Open(Path("db"));
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated->num_pages(), 0);
}

}  // namespace
}  // namespace tklus
