file(REMOVE_RECURSE
  "CMakeFiles/tklus_datagen.dir/cities.cc.o"
  "CMakeFiles/tklus_datagen.dir/cities.cc.o.d"
  "CMakeFiles/tklus_datagen.dir/query_workload.cc.o"
  "CMakeFiles/tklus_datagen.dir/query_workload.cc.o.d"
  "CMakeFiles/tklus_datagen.dir/relevance_oracle.cc.o"
  "CMakeFiles/tklus_datagen.dir/relevance_oracle.cc.o.d"
  "CMakeFiles/tklus_datagen.dir/text_model.cc.o"
  "CMakeFiles/tklus_datagen.dir/text_model.cc.o.d"
  "CMakeFiles/tklus_datagen.dir/tweet_generator.cc.o"
  "CMakeFiles/tklus_datagen.dir/tweet_generator.cc.o.d"
  "libtklus_datagen.a"
  "libtklus_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
