// Fixture: both classes carry [[nodiscard]]; nothing fires.
#ifndef FIXTURE_STATUS_H_
#define FIXTURE_STATUS_H_

namespace tklus {

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class [[nodiscard]] Result {};

}  // namespace tklus

#endif  // FIXTURE_STATUS_H_
