#include "core/query_processor.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>

#include "core/cover.h"
#include "geo/distance.h"
#include "index/postings_ops.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace tklus {

namespace {

// Running top-k score threshold: the paper's topKUser priority queue
// (Alg. 5 line 3). Scores only grow during a scan (every contribution is
// non-negative), so the peek value is monotone and pruning stays valid.
//
// Only the k largest current scores are materialized (`topk_`), so Peek is
// the multiset minimum — O(1) — instead of an O(k) std::advance over every
// user's score on every candidate. Score monotonicity makes the bounded
// set maintainable: a user's new score can only move it further into the
// top k, never out of it.
class TopKTracker {
 public:
  explicit TopKTracker(int k) : k_(k) {}

  // Updates user's current score (must be >= its previous score).
  void Update(UserId uid, double score) {
    double old_score = 0.0;
    bool had_old = false;
    const auto it = current_.find(uid);
    if (it != current_.end()) {
      old_score = it->second;
      had_old = true;
      it->second = score;
    } else {
      current_.emplace(uid, score);
    }
    if (had_old) {
      // Scores are compared by value: if several users share old_score,
      // evicting any one copy keeps topk_ the correct value-multiset.
      const auto pos = topk_.find(old_score);
      if (pos != topk_.end()) {
        topk_.erase(pos);
        topk_.insert(score);
        return;
      }
    }
    if (static_cast<int>(topk_.size()) < k_) {
      topk_.insert(score);
    } else if (score > *topk_.begin()) {
      topk_.erase(topk_.begin());
      topk_.insert(score);
    }
  }

  bool Full() const { return static_cast<int>(current_.size()) >= k_; }

  // k-th largest current score — topKUser.peek(). Only valid when Full().
  double Peek() const { return *topk_.begin(); }

 private:
  int k_;
  std::unordered_map<UserId, double> current_;
  std::multiset<double> topk_;  // the k largest current scores
};

uint64_t DfsBlockReads(const SimulatedDfs* dfs) {
  uint64_t reads = 0;
  for (const auto& node : dfs->node_stats()) reads += node.block_reads;
  return reads;
}

uint64_t InjectedFaults(const SimulatedDfs* dfs) {
  const FaultInjector* injector = dfs->fault_injector();
  return injector == nullptr ? 0 : injector->total_injected();
}

// I/O counters captured at query entry and diffed into QueryStats at the
// end. One shared helper so Process and ProcessTweets account identically
// (ProcessTweets used to skip the DB/DFS baselines, reporting zero reads).
struct IoBaselines {
  uint64_t db_page_reads = 0;
  uint64_t dfs_block_reads = 0;
  uint64_t fetch_retries = 0;
  uint64_t injected_faults = 0;

  static IoBaselines Capture(MetadataDb* db, const HybridIndex* index) {
    IoBaselines b;
    b.db_page_reads = db->disk().stats().page_reads;
    b.dfs_block_reads = DfsBlockReads(index->dfs());
    b.fetch_retries = index->fetch_retries();
    b.injected_faults = InjectedFaults(index->dfs());
    return b;
  }

  // Accumulates (rather than assigns) so the sharded router can sum the
  // per-shard FetchCandidates deltas into one QueryStats; the single-engine
  // path starts from a Reset() so the behavior there is unchanged.
  void Finish(MetadataDb* db, const HybridIndex* index,
              QueryStats& stats) const {
    stats.db_page_reads += db->disk().stats().page_reads - db_page_reads;
    stats.dfs_block_reads += DfsBlockReads(index->dfs()) - dfs_block_reads;
    stats.dfs_read_retries += index->fetch_retries() - fetch_retries;
    stats.injected_faults += InjectedFaults(index->dfs()) - injected_faults;
  }
};

// One processing stage: a trace span plus the per-stage I/O read deltas.
// Every stage records stage::kCounterDbPageReads/kCounterDfsBlockReads
// (even when zero), and the stages tile the candidate-to-result path, so
// summing a counter over stage spans reproduces the QueryStats total.
// Tolerates null db/index (the ShardedEngine's ranking plane has neither;
// its stages perform no direct I/O, so the counters record zero).
class StageScope {
 public:
  StageScope(Tracer& tracer, std::string_view name, MetadataDb* db,
             const HybridIndex* index)
      : db_(db), index_(index), span_(tracer.StartSpan(name)) {
    if (span_.active()) {
      db_reads_before_ =
          db_ == nullptr ? 0 : db_->disk().stats().page_reads.load();
      dfs_reads_before_ = index_ == nullptr ? 0 : DfsBlockReads(index_->dfs());
    }
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;
  ~StageScope() { End(); }

  Tracer::Span& span() { return span_; }

  void End() {
    if (span_.active()) {
      const uint64_t db_reads =
          db_ == nullptr ? 0 : db_->disk().stats().page_reads.load();
      const uint64_t dfs_reads =
          index_ == nullptr ? 0 : DfsBlockReads(index_->dfs());
      span_.AddCounter(stage::kCounterDbPageReads, db_reads - db_reads_before_);
      span_.AddCounter(stage::kCounterDfsBlockReads,
                       dfs_reads - dfs_reads_before_);
    }
    span_.End();
  }

 private:
  MetadataDb* db_;
  const HybridIndex* index_;
  Tracer::Span span_;
  uint64_t db_reads_before_ = 0;
  uint64_t dfs_reads_before_ = 0;
};

// Resolves metadata misses through delta-resident posts: a candidate tid
// that the metadata DB has no row for yet (its batch is durable in the WAL
// but not folded) materializes from the delta instead. A tid in neither
// place remains nullopt and is reported as corruption by the caller.
void FillMetasFromDelta(const DeltaIndex* delta,
                        const std::vector<int64_t>& sids,
                        std::vector<std::optional<TweetMeta>>* metas) {
  if (delta == nullptr || delta->empty()) return;
  for (size_t i = 0; i < sids.size(); ++i) {
    if ((*metas)[i].has_value()) continue;
    const Post* post = delta->FindBySid(sids[i]);
    if (post == nullptr) continue;
    (*metas)[i] = TweetMeta{post->sid,          post->uid,
                            post->location.lat, post->location.lon,
                            post->ruid,         post->rsid};
  }
}

}  // namespace

void QueryProcessor::AttachChildrenSources(ThreadBuilder& builder) const {
  // Hook the builder only when a source can actually contribute: attaching
  // one turns on per-level dedup, and the single-engine no-delta path must
  // keep its historical (hook-free) traversal byte-for-byte.
  const DeltaIndex* delta =
      (delta_ != nullptr && !delta_->empty()) ? delta_ : nullptr;
  const ThreadBuilder::ExtraChildrenFn* extra =
      extra_children_ ? &extra_children_ : nullptr;
  if (delta == nullptr && extra == nullptr) return;
  builder.set_extra_children(
      [delta, extra](TweetId sid, std::vector<TweetId>* out) {
        if (delta != nullptr) delta->AppendChildren(sid, out);
        if (extra != nullptr) (*extra)(sid, out);
      });
}

Status QueryProcessor::ValidateQuery(const TkLusQuery& query,
                                     bool tweet_query) {
  if (query.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (query.radius_km <= 0) {
    return Status::InvalidArgument("radius must be positive");
  }
  if (query.temporal.half_life.has_value()) {
    if (!query.temporal.reference.has_value()) {
      return Status::InvalidArgument(
          "temporal.half_life requires temporal.reference");
    }
    if (!tweet_query && *query.temporal.half_life <= 0) {
      return Status::InvalidArgument("temporal.half_life must be positive");
    }
  }
  return Status::Ok();
}

std::vector<std::string> QueryProcessor::NormalizeKeywords(
    const std::vector<std::string>& keywords) const {
  std::vector<std::string> terms;
  std::unordered_set<std::string> seen;
  for (const std::string& keyword : keywords) {
    for (std::string& term : tokenizer_.Tokenize(keyword)) {
      if (!seen.insert(term).second) continue;  // O(1) dedup, order kept
      terms.push_back(std::move(term));
    }
  }
  return terms;
}

Result<std::vector<std::optional<TweetMeta>>> QueryProcessor::ResolveCandidates(
    const std::vector<Posting>& candidates, Tracer& tracer,
    QueryStats* stats) {
  StageScope resolve_stage(tracer, stage::kSidResolve, db_, index_);
  // Scratch is thread_local, not a member: the processor is shared by
  // concurrent query threads, and hoisting the buffers out of the per-query
  // scope drops two allocations per query once each thread is warm.
  static thread_local std::vector<int64_t> candidate_sids;
  candidate_sids.clear();
  candidate_sids.reserve(candidates.size());
  for (const Posting& posting : candidates) {
    candidate_sids.push_back(posting.tid);
  }

  std::vector<std::optional<TweetMeta>> metas(candidates.size());
  uint64_t store_hits = 0;
  if (sid_store_ != nullptr) {
    store_hits = sid_store_->ResolveBatch(candidate_sids, &metas);
  }
  // Overlay order is equivalent to the historical db-then-delta join: the
  // store carries exactly the DB's committed rows, and a sid present in
  // both (the crash-recovery double-apply window) carries an identical row
  // in both, so base-wins semantics are unchanged.
  FillMetasFromDelta(delta_, candidate_sids, &metas);

  // B+-tree fallback for rows neither the store nor the delta held —
  // empty in steady state (the exclusive-commit window keeps the store in
  // lockstep with the DB), non-empty only when the store is detached or
  // stale, where correctness beats the extra descents.
  static thread_local std::vector<int64_t> missing_sids;
  static thread_local std::vector<size_t> missing_slots;
  missing_sids.clear();
  missing_slots.clear();
  for (size_t i = 0; i < metas.size(); ++i) {
    if (metas[i].has_value()) continue;
    missing_sids.push_back(candidate_sids[i]);
    missing_slots.push_back(i);
  }
  if (!missing_sids.empty()) {
    Result<std::vector<std::optional<TweetMeta>>> rows =
        db_->SelectBySidBatch(missing_sids);
    if (!rows.ok()) return rows.status();
    for (size_t j = 0; j < missing_slots.size(); ++j) {
      metas[missing_slots[j]] = (*rows)[j];
    }
    stats->sid_store_fallback_rows += missing_sids.size();
  }
  stats->sid_store_hits += store_hits;

  resolve_stage.span().AddCounter("rows_resolved", metas.size());
  resolve_stage.span().AddCounter("sid_store_hits", store_hits);
  resolve_stage.span().AddCounter("sid_store_fallback_rows",
                                  missing_sids.size());
  resolve_stage.End();
  return metas;
}

Result<std::vector<ResolvedCandidate>> QueryProcessor::FetchCandidates(
    const TkLusQuery& query, const std::vector<std::string>& terms,
    const std::vector<std::string>& cells, bool count_postings_lists,
    bool account_io, Tracer& tracer, QueryStats* stats) {
  std::optional<IoBaselines> io;
  if (account_io) io = IoBaselines::Capture(db_, index_);

  // Lines 4-7: fetch postings lists per (cell, term).
  StageScope fetch_stage(tracer, stage::kPostingsFetch, db_, index_);
  std::vector<std::vector<Posting>> term_lists;
  term_lists.reserve(terms.size());
  for (const std::string& term : terms) {
    if (count_postings_lists) {
      for (const std::string& cell : cells) {
        if (index_->forward_index().Lookup(cell, term) != nullptr) {
          ++stats->postings_lists_fetched;
        }
      }
    }
    Result<std::vector<Posting>> list = index_->FetchTermPostings(cells, term);
    if (!list.ok()) return list.status();
    if (delta_ != nullptr && !delta_->empty()) {
      *list = MergeDeltaPostings(*list, delta_->FetchTermPostings(cells, term));
    }
    term_lists.push_back(std::move(*list));
  }

  // Lines 9-14: AND intersects, OR unions.
  std::vector<Posting> candidates = query.semantics == Semantics::kAnd
                                        ? IntersectPostings(term_lists)
                                        : UnionPostings(term_lists);
  stats->candidates += candidates.size();
  term_lists.clear();

  // Temporal window (§VIII extension): tweet ids are timestamps, so the
  // period filter applies directly to the combined postings, before any
  // metadata I/O is spent.
  if (query.temporal.begin || query.temporal.end) {
    std::erase_if(candidates, [&query](const Posting& p) {
      return !query.temporal.InWindow(p.tid);
    });
  }
  if (count_postings_lists) {
    fetch_stage.span().AddCounter("postings_lists",
                                  stats->postings_lists_fetched);
  }
  fetch_stage.span().AddCounter("candidates", candidates.size());
  fetch_stage.End();

  // Line 20 (Alg. 4) / line 22 (Alg. 5): resolve every candidate's user
  // and location — O(1) through the SidStore, with the delta overlay and
  // the B+-tree fallback behind it (see ResolveCandidates).
  Result<std::vector<std::optional<TweetMeta>>> metas =
      ResolveCandidates(candidates, tracer, stats);
  if (!metas.ok()) return metas.status();

  std::vector<ResolvedCandidate> resolved;
  resolved.reserve(candidates.size());
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    if (!(*metas)[ci].has_value()) {
      return Status::Corruption("indexed tweet missing from metadata DB: " +
                                std::to_string(candidates[ci].tid));
    }
    resolved.push_back(ResolvedCandidate{candidates[ci], *(*metas)[ci]});
  }
  if (io.has_value()) io->Finish(db_, index_, *stats);
  return resolved;
}

double QueryProcessor::UserDistanceScore(UserId uid,
                                         const TkLusQuery& query) const {
  const auto it = user_locations_->find(uid);
  if (it == user_locations_->end() || it->second.empty()) return 0.0;
  double sum = 0.0;
  for (const GeoPoint& location : it->second) {
    sum += DistanceScore(location, query.location, query.radius_km);
  }
  return sum / static_cast<double>(it->second.size());
}

double QueryProcessor::FinalScore(const UserState& state,
                                  Ranking ranking) const {
  const double rho =
      ranking == Ranking::kSum ? state.rho_sum : state.rho_max;
  return UserScore(rho, state.delta_user, options_.scoring);
}

Result<double> QueryProcessor::Popularity(TweetId root_sid,
                                          ThreadBuilder& builder,
                                          QueryStats& stats) {
  if (popularity_cache_ != nullptr) {
    const std::optional<double> cached = popularity_cache_->Get(
        root_sid, options_.thread_depth, options_.scoring.epsilon);
    if (cached.has_value()) {
      ++stats.popularity_cache_hits;
      return *cached;
    }
  }
  // Capture the epoch before the rsid descents so a φ computed against a
  // pre-append thread can never be installed into a post-append cache.
  const uint64_t generation =
      popularity_cache_ != nullptr ? popularity_cache_->generation() : 0;
  Result<double> popularity = builder.Popularity(root_sid);
  if (!popularity.ok()) return popularity;
  ++stats.threads_built;
  if (popularity_cache_ != nullptr) {
    ++stats.popularity_cache_misses;
    popularity_cache_->Put(root_sid, options_.thread_depth,
                           options_.scoring.epsilon, generation, *popularity);
  }
  return popularity;
}

Status QueryProcessor::RankUsers(const TkLusQuery& query,
                                 const std::vector<std::string>& terms,
                                 const std::vector<ResolvedCandidate>& candidates,
                                 Tracer& tracer,
                                 std::vector<RankedUser>* out_users,
                                 QueryStats* stats) {
  ThreadBuilder thread_builder(
      db_, ThreadBuilder::Options{options_.thread_depth,
                                  options_.scoring.epsilon});
  const bool pruned_mode =
      query.ranking == Ranking::kMax && options_.enable_pruning;
  const double bound_popularity = bounds_->QueryBound(
      terms, query.semantics == Semantics::kAnd, options_.use_hot_bounds);

  std::unordered_map<UserId, UserState> users;
  TopKTracker tracker(query.k);

  AttachChildrenSources(thread_builder);
  StageScope thread_stage(tracer, stage::kThreadConstruction, db_, index_);
  for (const ResolvedCandidate& candidate : candidates) {
    const Posting& posting = candidate.posting;
    const TweetMeta& row = candidate.meta;
    // Lines 16-17: distance filter (cells overhang the circle).
    const double dist = EuclideanKm(GeoPoint{row.lat, row.lon},
                                    query.location);
    if (dist > query.radius_km) continue;
    ++stats->within_radius;

    const auto [user_it, inserted] = users.try_emplace(row.uid);
    UserState& state = user_it->second;
    if (inserted) {
      // Def. 9 is fixed per (user, query); computed once from the offline
      // user location profile on first encounter.
      state.delta_user = UserDistanceScore(row.uid, query);
    }
    ++state.matched;

    // Alg. 5 lines 18-19: skip thread construction when even an optimal
    // thread could not lift this tweet past the current k-th user.
    bool prune = false;
    if (pruned_mode && tracker.Full()) {
      const double upper = TweetUpperBoundScore(posting.tf, bound_popularity,
                                                options_.scoring);
      prune = upper < tracker.Peek();
    }
    if (prune) {
      ++stats->threads_pruned;
    } else {
      Result<double> popularity = Popularity(posting.tid, thread_builder,
                                             *stats);
      if (!popularity.ok()) return popularity.status();
      double rho = KeywordRelevance(posting.tf, *popularity, options_.scoring);
      if (query.temporal.half_life.has_value()) {
        // Recency decay <= 1, so the Alg. 5 bound stays admissible.
        rho *= RecencyWeight(posting.tid, *query.temporal.reference,
                             *query.temporal.half_life);
      }
      state.rho_sum += rho;
      if (rho > state.rho_max) {
        state.rho_max = rho;
        state.best_tweet = posting.tid;
      }
    }
    if (pruned_mode) {
      tracker.Update(row.uid, FinalScore(state, query.ranking));
    }
  }
  thread_stage.span().AddCounter("within_radius", stats->within_radius);
  thread_stage.span().AddCounter("threads_built", stats->threads_built);
  thread_stage.span().AddCounter("threads_pruned", stats->threads_pruned);
  thread_stage.span().AddCounter("popularity_cache_hits",
                                 stats->popularity_cache_hits);
  thread_stage.span().AddCounter("popularity_cache_misses",
                                 stats->popularity_cache_misses);
  thread_stage.End();

  // Lines 25-29: final user scores, sort, top k.
  StageScope score_stage(tracer, stage::kScoreTopk, db_, index_);
  std::vector<RankedUser> ranked;
  ranked.reserve(users.size());
  for (const auto& [uid, state] : users) {
    RankedUser user;
    user.uid = uid;
    user.score = FinalScore(state, query.ranking);
    if (query.explain) {
      user.why = UserScoreBreakdown{
          query.ranking == Ranking::kSum ? state.rho_sum : state.rho_max,
          state.delta_user, state.matched, state.best_tweet,
          state.rho_max};
    }
    ranked.push_back(std::move(user));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedUser& a, const RankedUser& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.uid < b.uid;
            });
  if (static_cast<int>(ranked.size()) > query.k) {
    ranked.resize(query.k);
  }
  score_stage.span().AddCounter("users_ranked", users.size());
  *out_users = std::move(ranked);
  score_stage.End();
  return Status::Ok();
}

Result<QueryResult> QueryProcessor::Process(const TkLusQuery& query) {
  TKLUS_RETURN_IF_ERROR(ValidateQuery(query, /*tweet_query=*/false));
  Stopwatch timer;
  QueryResult result;
  QueryStats& stats = result.stats;
  stats.Reset();
  const IoBaselines io = IoBaselines::Capture(db_, index_);
  std::shared_ptr<Trace> trace;
  if (query.trace) trace = std::make_shared<Trace>();
  Tracer tracer(trace.get());
  Tracer::Span root = tracer.StartSpan(stage::kQuery);

  // Line 1: the geohash cells covering the query circle.
  StageScope cover_stage(tracer, stage::kCover, db_, index_);
  const std::vector<std::string> cells =
      ComputeCover(query, index_->geohash_length());
  stats.cover_cells = cells.size();
  cover_stage.span().AddCounter("cover_cells", cells.size());

  const std::vector<std::string> terms = NormalizeKeywords(query.keywords);
  cover_stage.End();
  if (terms.empty()) {
    root.End();
    io.Finish(db_, index_, stats);
    stats.elapsed_ms = timer.ElapsedMillis();
    stats.trace = std::move(trace);
    return result;
  }

  Result<std::vector<ResolvedCandidate>> candidates = FetchCandidates(
      query, terms, cells, /*count_postings_lists=*/true,
      /*account_io=*/false, tracer, &stats);
  if (!candidates.ok()) return candidates.status();
  TKLUS_RETURN_IF_ERROR(
      RankUsers(query, terms, *candidates, tracer, &result.users, &stats));
  root.End();
  io.Finish(db_, index_, stats);
  stats.elapsed_ms = timer.ElapsedMillis();
  stats.trace = std::move(trace);
  return result;
}

Status QueryProcessor::RankTweets(const TkLusQuery& query,
                                  const std::vector<ResolvedCandidate>& candidates,
                                  Tracer& tracer,
                                  std::vector<RankedTweet>* out_tweets,
                                  QueryStats* stats) {
  ThreadBuilder thread_builder(
      db_, ThreadBuilder::Options{options_.thread_depth,
                                  options_.scoring.epsilon});
  AttachChildrenSources(thread_builder);
  StageScope thread_stage(tracer, stage::kThreadConstruction, db_, index_);
  for (const ResolvedCandidate& candidate : candidates) {
    const Posting& posting = candidate.posting;
    const TweetMeta& row = candidate.meta;
    const double dist =
        EuclideanKm(GeoPoint{row.lat, row.lon}, query.location);
    if (dist > query.radius_km) continue;
    ++stats->within_radius;
    Result<double> popularity = Popularity(posting.tid, thread_builder,
                                           *stats);
    if (!popularity.ok()) return popularity.status();
    double rho = KeywordRelevance(posting.tf, *popularity, options_.scoring);
    if (query.temporal.half_life.has_value()) {
      rho *= RecencyWeight(posting.tid, *query.temporal.reference,
                           *query.temporal.half_life);
    }
    const double score = UserScore(
        rho, DistanceScore(dist, query.radius_km), options_.scoring);
    out_tweets->push_back(RankedTweet{posting.tid, row.uid, score, dist});
  }
  thread_stage.span().AddCounter("within_radius", stats->within_radius);
  thread_stage.span().AddCounter("threads_built", stats->threads_built);
  thread_stage.span().AddCounter("popularity_cache_hits",
                                 stats->popularity_cache_hits);
  thread_stage.span().AddCounter("popularity_cache_misses",
                                 stats->popularity_cache_misses);
  thread_stage.End();

  StageScope score_stage(tracer, stage::kScoreTopk, db_, index_);
  std::sort(out_tweets->begin(), out_tweets->end(),
            [](const RankedTweet& a, const RankedTweet& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.sid < b.sid;
            });
  if (static_cast<int>(out_tweets->size()) > query.k) {
    out_tweets->resize(query.k);
  }
  score_stage.End();
  return Status::Ok();
}

Result<TweetQueryResult> QueryProcessor::ProcessTweets(
    const TkLusQuery& query) {
  TKLUS_RETURN_IF_ERROR(ValidateQuery(query, /*tweet_query=*/true));
  Stopwatch timer;
  TweetQueryResult result;
  QueryStats& stats = result.stats;
  stats.Reset();
  const IoBaselines io = IoBaselines::Capture(db_, index_);
  std::shared_ptr<Trace> trace;
  if (query.trace) trace = std::make_shared<Trace>();
  Tracer tracer(trace.get());
  Tracer::Span root = tracer.StartSpan(stage::kQuery);

  StageScope cover_stage(tracer, stage::kCover, db_, index_);
  const std::vector<std::string> cells =
      ComputeCover(query, index_->geohash_length());
  stats.cover_cells = cells.size();
  cover_stage.span().AddCounter("cover_cells", cells.size());
  const std::vector<std::string> terms = NormalizeKeywords(query.keywords);
  cover_stage.End();
  if (terms.empty()) {
    root.End();
    io.Finish(db_, index_, stats);
    stats.elapsed_ms = timer.ElapsedMillis();
    stats.trace = std::move(trace);
    return result;
  }

  Result<std::vector<ResolvedCandidate>> candidates = FetchCandidates(
      query, terms, cells, /*count_postings_lists=*/false,
      /*account_io=*/false, tracer, &stats);
  if (!candidates.ok()) return candidates.status();
  TKLUS_RETURN_IF_ERROR(
      RankTweets(query, *candidates, tracer, &result.tweets, &stats));
  root.End();
  io.Finish(db_, index_, stats);
  stats.elapsed_ms = timer.ElapsedMillis();
  stats.trace = std::move(trace);
  return result;
}

}  // namespace tklus
