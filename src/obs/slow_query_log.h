#ifndef TKLUS_OBS_SLOW_QUERY_LOG_H_
#define TKLUS_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace tklus {

// One slow query, as retained in the ring. `sequence` is the 1-based
// admission order over the log's whole lifetime, so a dump shows how
// many slow queries were dropped by wraparound (sequence gaps from 1).
struct SlowQueryRecord {
  uint64_t sequence = 0;  // assigned by Record
  std::string summary;    // human-readable query description
  double elapsed_ms = 0.0;
  uint64_t db_page_reads = 0;
  uint64_t dfs_block_reads = 0;
  uint64_t candidates = 0;
  uint64_t threads_built = 0;
  uint64_t popularity_cache_hits = 0;
  uint64_t popularity_cache_misses = 0;
};

// A bounded, thread-safe ring of the most recent slow queries. The
// engine records every query whose latency crosses the threshold
// (Options::slow_query_ms); the newest `capacity` records survive.
// DumpJsonLines writes one JSON object per line (JSONL), oldest first —
// grep/jq-friendly, no trailing commas to balance.
class SlowQueryLog {
 public:
  struct Options {
    double threshold_ms = 250.0;  // <= 0 disables recording entirely
    size_t capacity = 128;
  };

  explicit SlowQueryLog(Options options);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  bool enabled() const { return options_.threshold_ms > 0; }
  bool ShouldRecord(double elapsed_ms) const {
    return enabled() && elapsed_ms >= options_.threshold_ms;
  }

  // Admits `record` (its `sequence` field is assigned here), evicting
  // the oldest entry when full.
  void Record(SlowQueryRecord record) TKLUS_EXCLUDES(mu_);

  // Retained records, oldest first.
  std::vector<SlowQueryRecord> Snapshot() const TKLUS_EXCLUDES(mu_);

  // Every record ever admitted (>= Snapshot().size() after wraparound).
  uint64_t total_recorded() const TKLUS_EXCLUDES(mu_);

  void DumpJsonLines(std::ostream& out) const TKLUS_EXCLUDES(mu_);

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable Mutex mu_;
  std::vector<SlowQueryRecord> ring_ TKLUS_GUARDED_BY(mu_);
  size_t next_ TKLUS_GUARDED_BY(mu_) = 0;  // ring slot of the next Record
  uint64_t total_ TKLUS_GUARDED_BY(mu_) = 0;
};

}  // namespace tklus

#endif  // TKLUS_OBS_SLOW_QUERY_LOG_H_
