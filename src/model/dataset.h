#ifndef TKLUS_MODEL_DATASET_H_
#define TKLUS_MODEL_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "model/post.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace tklus {

// The geo-tagged social media data D = (P, U, G) of §II-A, in its raw
// form: the post set P with user ids. (The social network G is derived by
// SocialGraph; the on-disk relation by MetadataDb.)
class Dataset {
 public:
  Dataset() = default;

  // Appends a post. Posts may arrive unsorted; call SortBySid() before
  // handing the dataset to index builders.
  void Add(Post post);

  void SortBySid();

  const std::vector<Post>& posts() const { return posts_; }
  std::vector<Post>& mutable_posts() { return posts_; }
  size_t size() const { return posts_.size(); }

  // Distinct user count (computed on demand).
  size_t CountUsers() const;

  // Post indices per user, building the P_u map of §II-A.
  std::unordered_map<UserId, std::vector<size_t>> PostsByUser() const;

  // Term statistics over all posts (drives Table II).
  Vocabulary BuildVocabulary(const Tokenizer& tokenizer) const;

  // TSV persistence: sid \t uid \t lat \t lon \t ruid \t rsid \t fwd \t text.
  // Text must not contain tabs or newlines (the tokenizer never needs them
  // and the generator never emits them).
  Status SaveTsv(const std::string& path) const;
  static Result<Dataset> LoadTsv(const std::string& path);

 private:
  std::vector<Post> posts_;
};

}  // namespace tklus

#endif  // TKLUS_MODEL_DATASET_H_
