#ifndef TKLUS_TOOLS_ANALYZE_SOURCE_MODEL_H_
#define TKLUS_TOOLS_ANALYZE_SOURCE_MODEL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tklus::analyze {

// One lexical token. The lexer strips comments and collapses string/char
// literals into single tokens, so rules never false-positive on a banned
// spelling inside a comment or a log message — the main precision win
// over the grep-based lint this analyzer replaced.
struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line;
};

// An `#include` directive, extracted before tokenization.
struct IncludeDirective {
  std::string path;  // as written between the delimiters
  bool quoted;       // "module/header.h" (true) vs <vector> (false)
  int line;
};

// The lexical model of one file that rules run against.
struct SourceFile {
  std::string path;    // forward-slash path relative to the scan root
  std::string module;  // "storage" for src/storage/...; "" outside src/
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
};

// Lexes `text` into the model. `rel_path` must already be normalized to
// forward slashes and relative to the scan root.
SourceFile LexFile(std::string rel_path, std::string_view text);

// True if `path` ends with the path suffix `suffix` on a component
// boundary (so "storage/buffer_pool.h" matches "src/storage/buffer_pool.h"
// but not "src/storage/other_buffer_pool.h").
bool PathEndsWith(std::string_view path, std::string_view suffix);

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_SOURCE_MODEL_H_
