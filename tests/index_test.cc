#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/rng.h"
#include "dfs/dfs.h"
#include "geo/circle_cover.h"
#include "geo/geohash.h"
#include "index/hybrid_index.h"
#include "index/posting.h"
#include "index/postings_ops.h"
#include "model/dataset.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace tklus {
namespace {

// --------------------------------------------------------------- codec

TEST(PostingCodecTest, EmptyList) {
  const std::string encoded = EncodePostings({});
  Result<std::vector<Posting>> decoded = DecodePostings(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(PostingCodecTest, RoundTrip) {
  std::vector<Posting> postings = {
      {1000000, 1}, {1000001, 3}, {1002000, 2}, {2000000, 1}};
  Result<std::vector<Posting>> decoded =
      DecodePostings(EncodePostings(postings));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, postings);
}

TEST(PostingCodecTest, RandomRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Posting> postings;
    TweetId tid = 1000000;
    const int n = static_cast<int>(rng.UniformInt(uint64_t{200}));
    for (int i = 0; i < n; ++i) {
      tid += 1 + static_cast<TweetId>(rng.UniformInt(uint64_t{10000}));
      postings.push_back(
          Posting{tid, 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{5}))});
    }
    Result<std::vector<Posting>> decoded =
        DecodePostings(EncodePostings(postings));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, postings);
  }
}

TEST(PostingCodecTest, DeltaCodingCompresses) {
  // Dense consecutive tids: ~2 bytes per posting.
  std::vector<Posting> postings;
  for (TweetId t = 5000000; t < 5001000; ++t) postings.push_back({t, 1});
  const std::string encoded = EncodePostings(postings);
  EXPECT_LT(encoded.size(), postings.size() * 3);
}

TEST(PostingCodecTest, CorruptionDetected) {
  const std::string encoded = EncodePostings({{100, 1}, {200, 2}});
  EXPECT_FALSE(DecodePostings(encoded.substr(0, encoded.size() - 1)).ok());
  EXPECT_FALSE(DecodePostings(encoded + "x").ok());
  EXPECT_FALSE(DecodePostings("").ok());
}

TEST(VarintTest, Boundaries) {
  for (const uint64_t v :
       {0ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 35),
        ~0ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

// ----------------------------------------------------------- set ops

TEST(PostingsOpsTest, IntersectBasic) {
  std::vector<std::vector<Posting>> lists = {
      {{1, 1}, {3, 2}, {5, 1}},
      {{2, 1}, {3, 1}, {5, 3}},
  };
  const auto result = IntersectPostings(lists);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], (Posting{3, 3}));
  EXPECT_EQ(result[1], (Posting{5, 4}));
}

TEST(PostingsOpsTest, IntersectDisjointEmpty) {
  std::vector<std::vector<Posting>> lists = {{{1, 1}}, {{2, 1}}};
  EXPECT_TRUE(IntersectPostings(lists).empty());
}

TEST(PostingsOpsTest, IntersectWithEmptyListEmpty) {
  std::vector<std::vector<Posting>> lists = {{{1, 1}, {2, 1}}, {}};
  EXPECT_TRUE(IntersectPostings(lists).empty());
}

TEST(PostingsOpsTest, IntersectSingleListIdentity) {
  std::vector<std::vector<Posting>> lists = {{{1, 2}, {9, 1}}};
  EXPECT_EQ(IntersectPostings(lists), lists[0]);
  EXPECT_TRUE(IntersectPostings({}).empty());
}

TEST(PostingsOpsTest, UnionBasic) {
  std::vector<std::vector<Posting>> lists = {
      {{1, 1}, {3, 2}},
      {{2, 1}, {3, 1}},
      {{3, 5}, {4, 1}},
  };
  const auto result = UnionPostings(lists);
  ASSERT_EQ(result.size(), 4u);
  EXPECT_EQ(result[0], (Posting{1, 1}));
  EXPECT_EQ(result[1], (Posting{2, 1}));
  EXPECT_EQ(result[2], (Posting{3, 8}));
  EXPECT_EQ(result[3], (Posting{4, 1}));
}

TEST(PostingsOpsTest, ThreeWayIntersect) {
  std::vector<std::vector<Posting>> lists = {
      {{1, 1}, {5, 1}, {7, 1}, {9, 1}},
      {{5, 2}, {9, 2}},
      {{3, 1}, {5, 3}, {9, 3}, {11, 1}},
  };
  const auto result = IntersectPostings(lists);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], (Posting{5, 6}));
  EXPECT_EQ(result[1], (Posting{9, 6}));
}

TEST(PostingsOpsTest, RandomAgainstSets) {
  Rng rng(12);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::vector<Posting>> lists(3);
    std::vector<std::set<TweetId>> sets(3);
    for (int l = 0; l < 3; ++l) {
      TweetId tid = 0;
      const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{50}));
      for (int i = 0; i < n; ++i) {
        tid += 1 + static_cast<TweetId>(rng.UniformInt(uint64_t{6}));
        lists[l].push_back({tid, 1});
        sets[l].insert(tid);
      }
    }
    std::set<TweetId> expect_and, expect_or;
    for (const TweetId t : sets[0]) {
      if (sets[1].count(t) && sets[2].count(t)) expect_and.insert(t);
    }
    for (const auto& s : sets) expect_or.insert(s.begin(), s.end());
    std::set<TweetId> got_and, got_or;
    for (const auto& p : IntersectPostings(lists)) got_and.insert(p.tid);
    for (const auto& p : UnionPostings(lists)) got_or.insert(p.tid);
    EXPECT_EQ(got_and, expect_and);
    EXPECT_EQ(got_or, expect_or);
  }
}

TEST(PostingsOpsTest, MergeDisjoint) {
  const std::vector<Posting> a = {{1, 1}, {5, 1}};
  const std::vector<Posting> b = {{2, 2}, {7, 1}};
  const auto merged = MergeDisjoint(a, b);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].tid, 1);
  EXPECT_EQ(merged[1].tid, 2);
  EXPECT_EQ(merged[3].tid, 7);
}

// -------------------------------------------------------- hybrid index

Post MakePost(TweetId sid, UserId uid, double lat, double lon,
              const std::string& text) {
  Post p;
  p.sid = sid;
  p.uid = uid;
  p.location = GeoPoint{lat, lon};
  p.text = text;
  return p;
}

Dataset TorontoDataset() {
  // A small corpus around Toronto with a couple of far-away posts.
  Dataset ds;
  ds.Add(MakePost(1001, 1, 43.684, -79.374, "great hotel downtown"));
  ds.Add(MakePost(1002, 2, 43.690, -79.380, "hotel breakfast amazing"));
  ds.Add(MakePost(1003, 3, 43.700, -79.400, "pizza night with friends"));
  ds.Add(MakePost(1004, 4, 43.650, -79.350, "best pizza hotel combo"));
  ds.Add(MakePost(1005, 5, 40.712, -74.006, "hotel in newyork"));
  ds.Add(MakePost(1006, 6, 43.686, -79.376, "the and of"));  // all stopwords
  return ds;
}

class HybridIndexTest : public ::testing::Test {
 protected:
  void Init(int geohash_length = 4) {
    dfs_ = std::make_unique<SimulatedDfs>();
    HybridIndex::Options opts;
    opts.geohash_length = geohash_length;
    auto index = HybridIndex::Build(TorontoDataset(), dfs_.get(), opts);
    ASSERT_TRUE(index.ok());
    index_ = std::move(*index);
  }

  std::unique_ptr<SimulatedDfs> dfs_;
  std::unique_ptr<HybridIndex> index_;
};

TEST_F(HybridIndexTest, FetchPostingsByCell) {
  Init();
  const std::string cell1 =
      geohash::Encode(GeoPoint{43.684, -79.374}, 4);
  Result<std::vector<Posting>> postings =
      index_->FetchPostings(cell1, "hotel");
  ASSERT_TRUE(postings.ok());
  // Tweets 1001, 1002, 1004, 1006? — depends which share the cell; at
  // length 4 (~39 km cells) all Toronto tweets share one cell.
  std::set<TweetId> tids;
  for (const Posting& p : *postings) tids.insert(p.tid);
  EXPECT_TRUE(tids.count(1001));
  EXPECT_TRUE(tids.count(1002));
  EXPECT_TRUE(tids.count(1004));
  EXPECT_FALSE(tids.count(1005));  // New York is another cell
}

TEST_F(HybridIndexTest, PostingsSortedByTid) {
  Init();
  const std::string cell = geohash::Encode(GeoPoint{43.684, -79.374}, 4);
  Result<std::vector<Posting>> postings =
      index_->FetchPostings(cell, "hotel");
  ASSERT_TRUE(postings.ok());
  for (size_t i = 1; i < postings->size(); ++i) {
    EXPECT_LT((*postings)[i - 1].tid, (*postings)[i].tid);
  }
}

TEST_F(HybridIndexTest, MissingPairEmpty) {
  Init();
  Result<std::vector<Posting>> postings =
      index_->FetchPostings("zzzz", "hotel");
  ASSERT_TRUE(postings.ok());
  EXPECT_TRUE(postings->empty());
  postings = index_->FetchPostings(
      geohash::Encode(GeoPoint{43.684, -79.374}, 4), "nonexistentterm");
  ASSERT_TRUE(postings.ok());
  EXPECT_TRUE(postings->empty());
}

TEST_F(HybridIndexTest, StemmedTermsIndexed) {
  Init();
  // "friends" was indexed as stem "friend".
  const std::string cell = geohash::Encode(GeoPoint{43.700, -79.400}, 4);
  Result<std::vector<Posting>> postings =
      index_->FetchPostings(cell, "friend");
  ASSERT_TRUE(postings.ok());
  ASSERT_EQ(postings->size(), 1u);
  EXPECT_EQ((*postings)[0].tid, 1003);
}

TEST_F(HybridIndexTest, FetchTermPostingsAcrossCover) {
  Init();
  const auto cells =
      GeohashCircleCover(GeoPoint{43.684, -79.374}, 30.0, 4);
  Result<std::vector<Posting>> postings =
      index_->FetchTermPostings(cells, "hotel");
  ASSERT_TRUE(postings.ok());
  std::set<TweetId> tids;
  for (const Posting& p : *postings) tids.insert(p.tid);
  EXPECT_EQ(tids, (std::set<TweetId>{1001, 1002, 1004}));
}

TEST_F(HybridIndexTest, BuildStatspopulated) {
  Init();
  const IndexBuildStats& stats = index_->build_stats();
  EXPECT_GT(stats.postings_lists, 0u);
  EXPECT_GT(stats.postings_entries, 0u);
  EXPECT_GT(stats.inverted_bytes, 0u);
  EXPECT_GT(stats.forward_bytes, 0u);
  EXPECT_EQ(stats.postings_lists, index_->forward_index().size());
}

TEST_F(HybridIndexTest, StopwordOnlyTweetNotIndexed) {
  Init();
  // Tweet 1006 has only stop words; no postings list may reference it.
  for (const auto& [key, loc] : index_->forward_index().entries()) {
    Result<std::vector<Posting>> postings =
        index_->FetchPostings(key.first, key.second);
    ASSERT_TRUE(postings.ok());
    for (const Posting& p : *postings) EXPECT_NE(p.tid, 1006);
  }
}

TEST_F(HybridIndexTest, ShorterGeohashCoarserCells) {
  Init(2);
  // At length 2 (~1000 km cells) Toronto and New York may or may not
  // share a cell, but every post lands in some cell: total entries equal.
  const std::string toronto_cell =
      geohash::Encode(GeoPoint{43.684, -79.374}, 2);
  Result<std::vector<Posting>> postings =
      index_->FetchPostings(toronto_cell, "hotel");
  ASSERT_TRUE(postings.ok());
  EXPECT_GE(postings->size(), 3u);
}

TEST_F(HybridIndexTest, TermFrequenciesRecorded) {
  // "best pizza hotel combo" has tf(pizza)=1; craft a doubled term.
  Dataset ds;
  ds.Add(MakePost(2001, 9, 10.0, 10.0, "pizza pizza pizza tonight"));
  SimulatedDfs dfs;
  auto index = HybridIndex::Build(ds, &dfs, HybridIndex::Options{});
  ASSERT_TRUE(index.ok());
  const std::string cell = geohash::Encode(GeoPoint{10.0, 10.0}, 4);
  Result<std::vector<Posting>> postings =
      (*index)->FetchPostings(cell, "pizza");
  ASSERT_TRUE(postings.ok());
  ASSERT_EQ(postings->size(), 1u);
  EXPECT_EQ((*postings)[0].tf, 3u);
}

TEST_F(HybridIndexTest, InvalidGeohashLengthRejected) {
  SimulatedDfs dfs;
  HybridIndex::Options opts;
  opts.geohash_length = 0;
  EXPECT_FALSE(HybridIndex::Build(Dataset{}, &dfs, opts).ok());
  opts.geohash_length = 99;
  EXPECT_FALSE(HybridIndex::Build(Dataset{}, &dfs, opts).ok());
}

// ------------------------------------------------- storage-backed index
//
// An rsid -> sid index persisted in the storage engine's B+-tree, the
// same structure MetadataDb uses for reply lookups. Exercises the
// PageGuard pin discipline from a consumer outside src/storage and
// asserts the pool ends with zero pinned pages.
TEST(StorageBackedIndexTest, RsidIndexLeavesNoPinnedPages) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("tklus_index_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    Result<DiskManager> dm = DiskManager::Open((dir / "rsid.db").string());
    ASSERT_TRUE(dm.ok());
    BufferPool pool(&*dm, 16);
    Result<BPlusTree> tree = BPlusTree::Create(&pool);
    ASSERT_TRUE(tree.ok());
    // Thread roots 0..99, each with 20 replies.
    for (int64_t rsid = 0; rsid < 100; ++rsid) {
      for (int64_t i = 0; i < 20; ++i) {
        ASSERT_TRUE(
            tree->Insert(rsid, static_cast<uint64_t>(rsid * 1000 + i)).ok());
      }
    }
    Result<std::vector<uint64_t>> replies = tree->GetAll(42);
    ASSERT_TRUE(replies.ok());
    EXPECT_EQ(replies->size(), 20u);
    Result<std::optional<uint64_t>> missing = tree->Get(100);
    ASSERT_TRUE(missing.ok());
    EXPECT_FALSE(missing->has_value());
    // Teardown invariant: every fetch above went through a PageGuard, so
    // nothing may still be pinned.
    EXPECT_EQ(pool.pinned_page_count(), 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(HybridIndexTest, WorkerCountDoesNotChangeContent) {
  // 1 worker vs 4 workers must index identically.
  const Dataset ds = TorontoDataset();
  SimulatedDfs dfs1, dfs4;
  HybridIndex::Options o1;
  o1.mapreduce_workers = 1;
  HybridIndex::Options o4;
  o4.mapreduce_workers = 4;
  auto i1 = HybridIndex::Build(ds, &dfs1, o1);
  auto i4 = HybridIndex::Build(ds, &dfs4, o4);
  ASSERT_TRUE(i1.ok());
  ASSERT_TRUE(i4.ok());
  ASSERT_EQ((*i1)->forward_index().size(), (*i4)->forward_index().size());
  for (const auto& [key, loc] : (*i1)->forward_index().entries()) {
    auto p1 = (*i1)->FetchPostings(key.first, key.second);
    auto p4 = (*i4)->FetchPostings(key.first, key.second);
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p4.ok());
    EXPECT_EQ(*p1, *p4) << key.first << "/" << key.second;
  }
}

}  // namespace
}  // namespace tklus
