# Empty dependencies file for tklus_index.
# This may be replaced when dependencies are built.
