// Fixture: blocking I/O stays off the engine lock (WAL append under the
// staging lock, only the in-memory absorb under mu_); nothing fires.
namespace tklus {

class Engine {
 public:
  void AppendBatch() {
    MutexLock append(&append_mu_);
    wal_->Append(record_);  // under append_mu_ only: allowed
    {
      WriterMutexLock lock(&mu_);
      AbsorbRecord(record_);  // in-memory, not an io-symbol
    }
  }

 private:
  void AbsorbRecord(int record) { last_ = record; }

  Mutex append_mu_;
  SharedMutex mu_;
  Wal* wal_;
  int record_ = 0;
  int last_ = 0;
};

}  // namespace tklus
