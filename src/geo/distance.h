#ifndef TKLUS_GEO_DISTANCE_H_
#define TKLUS_GEO_DISTANCE_H_

#include <cmath>

#include "geo/point.h"

namespace tklus {

inline constexpr double kEarthRadiusKm = 6371.0088;
inline constexpr double kDegToRad = 0.017453292519943295;
// Kilometres per degree of latitude (and of longitude at the equator).
inline constexpr double kKmPerDegreeLat = 111.19492664455873;

// Equirectangular ("local Euclidean") distance in km. This is the
// Euclidean metric of the paper (Def. footnote 4) applied in a frame
// projected at the midpoint latitude; exact enough for city-scale radii.
inline double EuclideanKm(const GeoPoint& a, const GeoPoint& b) {
  const double mid_lat = (a.lat + b.lat) * 0.5 * kDegToRad;
  const double dx = (b.lon - a.lon) * std::cos(mid_lat);
  const double dy = (b.lat - a.lat);
  return std::sqrt(dx * dx + dy * dy) * kKmPerDegreeLat;
}

// Great-circle distance in km (haversine). Provided for validation; the
// query pipeline uses EuclideanKm per the paper.
inline double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2);
  const double s2 = std::sin(dlon / 2);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

// Minimum distance (km) from `p` to the box: distance to the clamped point.
inline double MinDistanceKm(const BoundingBox& box, const GeoPoint& p) {
  if (box.Contains(p)) return 0.0;
  return EuclideanKm(box.Clamp(p), p);
}

}  // namespace tklus

#endif  // TKLUS_GEO_DISTANCE_H_
