#include "analyze/analyzer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "analyze/callgraph.h"
#include "analyze/summaries.h"

namespace tklus::analyze {
namespace fs = std::filesystem;

namespace {

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Forward-slash path of `file` relative to `root`.
std::string RelPath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::proximate(file, root, ec);
  return (ec ? file : rel).generic_string();
}

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

std::string JsonNumber(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

// Runs `body(index)` for every index in [0, count) across `jobs`
// worker threads (body must be safe to run concurrently for distinct
// indexes). jobs <= 1 runs inline.
template <typename Body>
void ParallelFor(size_t count, unsigned jobs, const Body& body) {
  if (jobs <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (size_t i; (i = next.fetch_add(1)) < count;) body(i);
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace

std::string StatsToJson(const AnalyzerStats& stats) {
  std::ostringstream out;
  out << "{\n"
      << "  \"total_ms\": " << JsonNumber(stats.total_ms) << ",\n"
      << "  \"files\": " << stats.files << ",\n"
      << "  \"functions\": " << stats.functions << ",\n"
      << "  \"call_edges\": " << stats.call_edges << ",\n"
      << "  \"passes\": {\n"
      << "    \"lex_ms\": " << JsonNumber(stats.lex_ms) << ",\n"
      << "    \"model_ms\": " << JsonNumber(stats.model_ms) << ",\n"
      << "    \"callgraph_ms\": " << JsonNumber(stats.callgraph_ms) << ",\n"
      << "    \"fixpoint_ms\": " << JsonNumber(stats.fixpoint_ms) << ",\n"
      << "    \"rules_ms\": " << JsonNumber(stats.rules_ms) << "\n"
      << "  },\n"
      << "  \"rules\": [\n";
  for (size_t i = 0; i < stats.rule_ms.size(); ++i) {
    out << "    {\"rule\": \"" << stats.rule_ms[i].first
        << "\", \"ms\": " << JsonNumber(stats.rule_ms[i].second) << "}"
        << (i + 1 < stats.rule_ms.size() ? "," : "") << "\n";
  }
  out << "  ]\n}";
  return out.str();
}

Result<AnalyzerContext> LoadManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open manifest " + path);
  AnalyzerContext ctx;
  ctx.has_manifest = true;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'module: deps...'");
    }
    const std::string module = Trim(line.substr(0, colon));
    if (module.empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": empty module name");
    }
    std::set<std::string>& deps = ctx.allowed_deps[module];
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.insert(dep);
  }
  return ctx;
}

Result<LockOrderConfig> LoadLockOrderConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open lockorder manifest " + path);
  LockOrderConfig cfg;
  cfg.loaded = true;
  std::map<std::string, std::set<std::string>> edges;
  std::string line;
  int lineno = 0;
  const auto err = [&](const std::string& what) {
    return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                   ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = Trim(line);
    if (line.empty()) continue;
    std::istringstream rest(line);
    std::string directive;
    rest >> directive;
    std::vector<std::string> args;
    for (std::string arg; rest >> arg;) args.push_back(arg);
    if (directive == "lock") {
      if (args.empty() || args.size() > 2) {
        return err("expected 'lock NAME [PATH_SUFFIX]'");
      }
      for (const LockOrderConfig::LockDecl& decl : cfg.locks) {
        if (decl.name == args[0]) {
          return err("duplicate lock declaration '" + args[0] + "'");
        }
      }
      cfg.locks.push_back(LockOrderConfig::LockDecl{
          args[0], args.size() > 1 ? args[1] : std::string()});
      edges.emplace(args[0], std::set<std::string>());
    } else if (directive == "order") {
      if (args.size() < 2) return err("expected 'order A B [C ...]'");
      for (const std::string& name : args) {
        if (edges.find(name) == edges.end()) {
          return err("order names undeclared lock '" + name +
                     "' (declare it with 'lock' first)");
        }
      }
      for (size_t i = 0; i + 1 < args.size(); ++i) {
        edges[args[i]].insert(args[i + 1]);
      }
    } else if (directive == "io-symbol") {
      if (args.empty()) return err("expected 'io-symbol NAME...'");
      cfg.io_symbols.insert(args.begin(), args.end());
    } else if (directive == "io-lock") {
      if (args.empty()) return err("expected 'io-lock NAME...'");
      for (const std::string& name : args) {
        if (edges.find(name) == edges.end()) {
          return err("io-lock names undeclared lock '" + name + "'");
        }
        cfg.io_locks.insert(name);
      }
    } else {
      return err("unknown directive '" + directive + "'");
    }
  }
  // Transitive closure + cycle check, DFS per node. A lock reachable
  // from itself means the declared "order" is not a DAG.
  for (const auto& [start, unused] : edges) {
    std::set<std::string>& reach = cfg.can_precede[start];
    std::vector<std::string> stack(edges.at(start).begin(),
                                   edges.at(start).end());
    while (!stack.empty()) {
      const std::string node = std::move(stack.back());
      stack.pop_back();
      if (node == start) {
        return Status::InvalidArgument(
            path + ": declared lock order contains a cycle through '" +
            start + "'");
      }
      if (!reach.insert(node).second) continue;
      const auto it = edges.find(node);
      if (it != edges.end()) {
        stack.insert(stack.end(), it->second.begin(), it->second.end());
      }
    }
  }
  return cfg;
}

Result<HotPathConfig> LoadHotPathConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open hotpath manifest " + path);
  HotPathConfig cfg;
  cfg.loaded = true;
  std::string line;
  int lineno = 0;
  const auto err = [&](const std::string& what) {
    return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                   ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = Trim(line);
    if (line.empty()) continue;
    std::istringstream rest(line);
    std::string directive;
    rest >> directive;
    std::vector<std::string> args;
    for (std::string arg; rest >> arg;) args.push_back(arg);
    if (args.empty()) {
      return err("expected '" + directive + " NAME...'");
    }
    if (directive == "root") {
      cfg.roots.insert(cfg.roots.end(), args.begin(), args.end());
    } else if (directive == "ban") {
      cfg.banned.insert(args.begin(), args.end());
    } else if (directive == "allow") {
      cfg.allowed.insert(args.begin(), args.end());
    } else {
      return err("unknown directive '" + directive + "'");
    }
  }
  return cfg;
}

Result<std::vector<Diagnostic>> RunAnalysis(const AnalyzerOptions& options,
                                            AnalyzerStats* stats) {
  const auto run_start = SteadyClock::now();
  const fs::path root(options.root);
  if (!fs::exists(root)) {
    return Status::InvalidArgument("root does not exist: " + options.root);
  }

  AnalyzerContext ctx;
  std::string manifest = options.manifest;
  if (manifest.empty()) {
    for (const fs::path& candidate :
         {root / "layers.conf", root / "tools" / "analyze" / "layers.conf"}) {
      if (fs::exists(candidate)) {
        manifest = candidate.string();
        break;
      }
    }
  }
  if (!manifest.empty()) {
    Result<AnalyzerContext> loaded = LoadManifest(manifest);
    if (!loaded.ok()) return loaded.status();
    ctx = std::move(*loaded);
  }
  std::string lockorder = options.lockorder;
  if (lockorder.empty()) {
    for (const fs::path& candidate :
         {root / "lockorder.conf",
          root / "tools" / "analyze" / "lockorder.conf"}) {
      if (fs::exists(candidate)) {
        lockorder = candidate.string();
        break;
      }
    }
  }
  if (!lockorder.empty()) {
    Result<LockOrderConfig> loaded = LoadLockOrderConfig(lockorder);
    if (!loaded.ok()) return loaded.status();
    ctx.lockorder = std::move(*loaded);
  }
  std::string hotpath = options.hotpath;
  if (hotpath.empty()) {
    for (const fs::path& candidate :
         {root / "hotpath.conf",
          root / "tools" / "analyze" / "hotpath.conf"}) {
      if (fs::exists(candidate)) {
        hotpath = candidate.string();
        break;
      }
    }
  }
  if (!hotpath.empty()) {
    Result<HotPathConfig> loaded = LoadHotPathConfig(hotpath);
    if (!loaded.ok()) return loaded.status();
    ctx.hotpath = std::move(*loaded);
  }

  std::vector<std::string> paths = options.paths;
  if (paths.empty()) paths.push_back("src");

  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path full = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_regular_file(full)) {
      files.push_back(full);
      continue;
    }
    if (!fs::is_directory(full)) {
      return Status::InvalidArgument("scan path not found: " + full.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(full)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  unsigned jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::min(8u, std::max(1u, std::thread::hardware_concurrency()));
  }
  jobs = static_cast<unsigned>(
      std::min<size_t>(jobs, std::max<size_t>(files.size(), 1)));

  // The registered rule set, for suppression validation and stats
  // labels; each phase-3 worker still builds its own instances.
  const std::vector<std::unique_ptr<Rule>> registry = BuildRuleSet();
  for (const auto& rule : registry) {
    ctx.rule_names.insert(std::string(rule->name()));
  }

  // Phase 1a: parallel lex into pre-sized slots. Read failures park in
  // per-file statuses, surfaced after the phase (keeps slot indexes
  // aligned with `files`).
  std::vector<SourceFile> models(files.size());
  std::vector<Status> read_status(files.size(), Status::Ok());
  auto phase_start = SteadyClock::now();
  ParallelFor(files.size(), jobs, [&](size_t idx) {
    Result<std::string> text = ReadFile(files[idx]);
    if (!text.ok()) {
      read_status[idx] = text.status();
      return;
    }
    models[idx] = LexFile(RelPath(files[idx], root), *text);
  });
  for (const Status& st : read_status) {
    if (!st.ok()) return st;
  }
  if (stats != nullptr) stats->lex_ms = MsSince(phase_start);

  // Phase 1b: parallel per-file statement model.
  phase_start = SteadyClock::now();
  ParallelFor(models.size(), jobs,
              [&](size_t idx) { BuildFileModel(&models[idx]); });
  if (stats != nullptr) stats->model_ms = MsSince(phase_start);

  // Phase 2 (sequential): the cross-TU program model, the summary
  // fixpoint and hot-path reachability. Sequential by design — the
  // interprocedural state must be identical for every jobs value.
  phase_start = SteadyClock::now();
  ProgramModel program;
  program.Build(models);
  if (stats != nullptr) stats->callgraph_ms = MsSince(phase_start);
  phase_start = SteadyClock::now();
  ComputeSummaries(&program);
  ComputeHotPaths(ctx.hotpath, &program);
  if (stats != nullptr) stats->fixpoint_ms = MsSince(phase_start);
  ctx.program = &program;

  // Phase 3: parallel rule phase. Each worker invocation handles one
  // whole file: run every rule, then apply that file's NOLINT
  // suppressions — dropping findings a well-formed suppression names and
  // flagging well-formed suppressions that no longer silence anything.
  struct FileOutcome {
    std::vector<Diagnostic> diags;
  };
  std::vector<FileOutcome> outcomes(models.size());
  std::vector<std::vector<double>> rule_times(
      models.size(), std::vector<double>());
  phase_start = SteadyClock::now();
  const bool want_rule_times = stats != nullptr;
  ParallelFor(models.size(), jobs, [&](size_t idx) {
    thread_local std::vector<std::unique_ptr<Rule>> rules;
    if (rules.empty()) rules = BuildRuleSet();
    const SourceFile& model = models[idx];
    std::vector<Diagnostic>& diags = outcomes[idx].diags;
    if (want_rule_times) rule_times[idx].assign(rules.size(), 0.0);
    for (size_t r = 0; r < rules.size(); ++r) {
      const auto rule_start = SteadyClock::now();
      rules[r]->Check(model, ctx, &diags);
      if (want_rule_times) rule_times[idx][r] = MsSince(rule_start);
    }
    // Suppression application. A suppression participates only when
    // well-formed (rule named, known, reason given) — malformed ones
    // were just flagged by the suppression rule and must not silence
    // anything. Suppression-rule findings themselves are not
    // suppressible: silencing the suppression police with its own
    // syntax would be a hole.
    std::vector<const Suppression*> active;
    for (const Suppression& s : model.suppressions) {
      if (s.has_rule && s.has_reason && ctx.rule_names.count(s.rule) > 0 &&
          s.rule != "suppression") {
        active.push_back(&s);
      }
    }
    if (active.empty()) return;
    std::vector<char> used(active.size(), 0);
    std::vector<Diagnostic> kept;
    kept.reserve(diags.size());
    for (Diagnostic& d : diags) {
      bool drop = false;
      if (d.rule != "suppression") {
        for (size_t s = 0; s < active.size(); ++s) {
          if (active[s]->line == d.line && active[s]->rule == d.rule) {
            used[s] = 1;
            drop = true;
          }
        }
      }
      if (!drop) kept.push_back(std::move(d));
    }
    for (size_t s = 0; s < active.size(); ++s) {
      if (used[s]) continue;
      kept.push_back(Diagnostic{
          "suppression", model.path, active[s]->line,
          "stale suppression: 'tklus-" + active[s]->rule +
              "' does not fire on this line; delete the NOLINT so the "
              "exemption cannot outlive its cause"});
    }
    diags = std::move(kept);
  });
  if (stats != nullptr) {
    stats->rules_ms = MsSince(phase_start);
    stats->files = models.size();
    stats->functions = program.functions.size();
    for (const ProgramFunction& fn : program.functions) {
      stats->call_edges += fn.callees.size();
    }
    stats->rule_ms.reserve(registry.size());
    for (size_t r = 0; r < registry.size(); ++r) {
      double total = 0;
      for (const std::vector<double>& per_file : rule_times) {
        if (r < per_file.size()) total += per_file[r];
      }
      stats->rule_ms.emplace_back(std::string(registry[r]->name()), total);
    }
  }

  std::vector<Diagnostic> diagnostics;
  for (FileOutcome& outcome : outcomes) {
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(outcome.diags.begin()),
                       std::make_move_iterator(outcome.diags.end()));
  }
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  if (stats != nullptr) stats->total_ms = MsSince(run_start);
  return diagnostics;
}

}  // namespace tklus::analyze
