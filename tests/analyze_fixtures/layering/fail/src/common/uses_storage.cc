// Fixture: an upward edge (common -> storage) is not in the manifest and
// must trip `layering`.
#include "storage/buffer_pool.h"

namespace tklus {

int LayerBroken() { return 0; }

}  // namespace tklus
