#ifndef TKLUS_TOOLS_ANALYZE_RULES_H_
#define TKLUS_TOOLS_ANALYZE_RULES_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/source_model.h"

namespace tklus::analyze {

// One finding. `rule` is the rule's stable name (what --selftest keys on
// and what a suppression would reference); `path` is relative to the scan
// root.
struct Diagnostic {
  std::string rule;
  std::string path;
  int line;
  std::string message;
};

// Shared inputs every rule sees: the layering manifest (module ->
// modules it may include from). `has_manifest` distinguishes "no manifest
// found" from "manifest with no edges" — the layering rule reports
// cross-module includes as errors in the former case rather than
// silently passing.
struct AnalyzerContext {
  std::map<std::string, std::set<std::string>> allowed_deps;
  bool has_manifest = false;
};

// A domain-invariant check over one file's lexical model. Rules must be
// pure (no state across files) so scan order never changes the outcome.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void Check(const SourceFile& file, const AnalyzerContext& ctx,
                     std::vector<Diagnostic>* out) const = 0;
};

// The full registered rule set, in reporting order.
std::vector<std::unique_ptr<Rule>> BuildRuleSet();

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_RULES_H_
