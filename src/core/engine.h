#ifndef TKLUS_CORE_ENGINE_H_
#define TKLUS_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/bounds.h"
#include "core/lock_ranks.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "core/thread_tracker.h"
#include "dfs/dfs.h"
#include "index/delta_index.h"
#include "index/hybrid_index.h"
#include "model/dataset.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "social/popularity_cache.h"
#include "social/social_graph.h"
#include "storage/metadata_db.h"
#include "storage/sid_store.h"
#include "storage/wal.h"
#include "text/vocabulary.h"

namespace tklus {

// The public entry point of the library: builds the whole Figure-3 stack
// from a dataset (metadata DB with B+-trees, MapReduce-constructed hybrid
// index in the simulated DFS, social graph, upper-bound registry) and
// answers TkLUS queries.
//
//   Dataset tweets = ...;
//   auto engine = TkLusEngine::Build(tweets, TkLusEngine::Options{});
//   TkLusQuery q{.location = {43.68, -79.37}, .radius_km = 10,
//                .keywords = {"hotel"}, .k = 5};
//   auto result = (*engine)->Query(q);
//
// Write path (durable, LSM-style): AppendBatch appends the serialized
// batch to a write-ahead log and fsyncs *before* acking, then absorbs the
// posts into an in-memory delta index under a brief exclusive lock.
// Queries read base ⊎ delta. A background merge folds the delta into the
// hybrid index (MapReduce + metadata rows) off the appenders' lock path
// and, once the engine has an established checkpoint (a Save into its
// working directory, or having been Open()ed), re-checkpoints and
// truncates the WAL. TkLusEngine::Open replays the WAL tail past the last
// checkpoint, truncating torn/corrupt tail records rather than failing.
//
// Ack contract: once AppendBatch returns OK, the batch survives any crash
// — provided a checkpoint was ever established in the working directory
// (Open() recovers checkpoint + WAL tail). A batch whose AppendBatch
// returned an error is never visible after recovery (no phantoms).
//
// Concurrency contract: Query and QueryTweets take the engine lock in
// shared mode and may run concurrently with each other from any number of
// threads. AppendBatch serializes against other appenders on its own lock
// and takes the engine lock exclusively only for the in-memory absorb, so
// readers overlap the WAL write/fsync. Save/MergeNow serialize with
// appenders and the background merge; their expensive phases (MapReduce
// fold, artifact file writes) run off the engine lock. This is sound
// because the whole read path is re-entrant under a quiescent writer: the
// metadata DB's buffer pool is internally latched, page *contents* are
// read-only between folds (Insert — the only mutator — runs under the
// exclusive lock during a fold commit), the hybrid index snapshots its
// forward-index state under its own lock, the DFS has its own mutex, and
// the popularity cache is sharded-lock thread-safe with generation-based
// invalidation on append. The component accessors (index(),
// metadata_db(), dfs(), ...) bypass the lock and are for benchmarks/tests
// on a quiescent engine only.
//
// Lock order (outer to inner): append_mu_ -> merge_mu_ -> mu_, with
// merge_wake_mu_ nesting only under append_mu_. The order is declared in
// tools/analyze/lockorder.conf (checked lexically by tklus_analyze's
// lock-order rule) and mirrored as ranks in core/lock_ranks.h (checked
// at runtime by the deadlock witness when built with
// -DTKLUS_DEADLOCK_DEBUG=ON).
class TkLusEngine {
 public:
  struct Options {
    // Directory for the metadata DB file + WAL. Empty -> unique temp
    // directory (removed when the engine is destroyed).
    std::string working_dir;
    int geohash_length = 4;       // §VI-B2's choice
    int mapreduce_workers = 3;    // Table III cluster
    int reduce_tasks = 8;
    size_t buffer_pool_pages = 1024;
    int thread_depth = 6;         // d in Alg. 1
    size_t num_hot_keywords = 10; // Table II
    ScoringParams scoring;
    SimulatedDfs::Options dfs;
    TokenizerOptions tokenizer;
    // Fault tolerance. The injector (optional, must outlive the engine) is
    // wired into every I/O layer: DFS block reads, metadata-DB page I/O,
    // MapReduce tasks, the WAL and artifact writes. Transient DFS faults
    // during postings fetches are absorbed by `dfs_retry`; failed
    // MapReduce task attempts are re-run up to `max_task_attempts` times.
    FaultInjector* fault_injector = nullptr;
    RetryPolicy dfs_retry;
    int max_task_attempts = 4;
    // Capacity (entries) of the engine-owned φ(p) memo shared across
    // queries; AppendBatch invalidates it wholesale via a generation
    // bump. 0 disables the cache (every query rebuilds every thread).
    size_t popularity_cache_entries = 1 << 16;
    // Observability: queries slower than `slow_query_ms` land in the
    // engine's slow-query ring (slow_query_log()); <= 0 disables it.
    double slow_query_ms = 250.0;
    size_t slow_query_log_entries = 128;
    // The background merge folds the delta index into the hybrid index
    // once it holds at least this many posts (and re-checkpoints + WAL-
    // truncates when a checkpoint is established). 0 disables the
    // background merge: the delta grows until Save()/MergeNow() folds it.
    size_t delta_merge_posts = 4096;
    // When false, folds never checkpoint or truncate the WAL on their own
    // — only an explicit Save(dir) does. The ShardedEngine runs its shards
    // this way: a shard checkpoint is only safe after the router has
    // persisted its own plane watermark, so checkpoint timing must be
    // coordinated above the shard.
    bool auto_checkpoint = true;
  };

  // Builds every subsystem from `dataset`. The dataset is not retained.
  static Result<std::unique_ptr<TkLusEngine>> Build(const Dataset& dataset,
                                                    Options options);
  static Result<std::unique_ptr<TkLusEngine>> Build(const Dataset& dataset) {
    return Build(dataset, Options{});
  }

  // Appends a new batch of posts — the paper's periodic-batch setting
  // (§IV-A) made durable and non-blocking: the batch is WAL-logged and
  // fsynced (the ack barrier), then absorbed into the delta index, user
  // profiles, vocabulary and the exact score bounds. Queries see the batch
  // as soon as this returns; the hybrid index catches up via the
  // background merge. Batch sids must be sorted and strictly greater than
  // everything already indexed (sids are timestamps).
  Status AppendBatch(const Dataset& batch)
      TKLUS_EXCLUDES(append_mu_, merge_mu_, mu_);

  // Checkpoints every artifact (metadata DB image, DFS image with the
  // inverted index, forward index, score bounds, user location profiles,
  // vocabulary) into `dir`, from which Open can restore the engine without
  // the original dataset. The delta index is folded first, so the
  // checkpoint is self-contained. Each artifact is written crash-safely
  // (temp file + fsync + rename) with a CRC32 footer; a crash mid-save
  // never leaves a half-written artifact under its final name. When `dir`
  // is the engine's own working directory the WAL is truncated afterwards
  // (the records are all inside the checkpoint) and the background merge
  // starts re-checkpointing on every fold.
  Status Save(const std::string& dir)
      TKLUS_EXCLUDES(append_mu_, merge_mu_, mu_);

  // Synchronously folds the delta index into the hybrid index and, when a
  // checkpoint is established, re-checkpoints the working directory and
  // truncates the WAL. What the background merge runs; exposed for tests
  // and benchmarks that need a deterministic merge point.
  Status MergeNow() TKLUS_EXCLUDES(append_mu_, merge_mu_, mu_);

  // Restores an engine saved with Save, then replays the WAL tail: torn
  // or checksum-damaged tail records are truncated (with a warning), and
  // every intact record past the checkpoint watermark is re-absorbed into
  // the delta index. Artifacts are checksum-verified before
  // deserialization: byte-level damage yields kCorruption, never garbage
  // state. The social graph is not persisted (queries never consult it —
  // bounds are persisted separately); social_graph() covers only replayed
  // posts on an opened engine.
  static Result<std::unique_ptr<TkLusEngine>> Open(const std::string& dir,
                                                   Options options);
  static Result<std::unique_ptr<TkLusEngine>> Open(const std::string& dir) {
    return Open(dir, Options{});
  }

  ~TkLusEngine();
  TkLusEngine(const TkLusEngine&) = delete;
  TkLusEngine& operator=(const TkLusEngine&) = delete;

  // Answers one TkLUS query with its selected semantics/ranking.
  Result<QueryResult> Query(const TkLusQuery& query) TKLUS_EXCLUDES(mu_);

  // Tweet-level top-k spatial-keyword search (the intro's "directly
  // retrieve tweets" alternative): ranks tweets, not users.
  Result<TweetQueryResult> QueryTweets(const TkLusQuery& query)
      TKLUS_EXCLUDES(mu_);

  // The fetch half of a query against this engine's slice of the data:
  // postings for `cells` ∩ `terms` (base ⊎ delta), combined, temporally
  // filtered and resolved to metadata rows, under the engine's shared
  // lock. The ShardedEngine's scatter phase — each shard is handed only
  // the cover cells it owns and returns a tid-sorted candidate stream;
  // ranking happens above, at the router's plane. I/O deltas for the call
  // are accumulated into `stats`. `tracer` may be null;
  // `count_postings_lists` keeps the user-query/tweet-query stats
  // asymmetry (see QueryProcessor::FetchCandidates).
  Result<std::vector<ResolvedCandidate>> FetchCandidates(
      const TkLusQuery& query, const std::vector<std::string>& terms,
      const std::vector<std::string>& cells, bool count_postings_lists,
      Tracer* tracer, QueryStats* stats) TKLUS_EXCLUDES(mu_);

  // Component access for benchmarks, ablations and tests. These bypass
  // mu_ (hence the analysis opt-outs): callers must ensure no concurrent
  // AppendBatch/Query is in flight.
  const HybridIndex& index() const { return *index_; }
  MetadataDb& metadata_db() { return *db_; }
  const SocialGraph& social_graph() const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return graph_;
  }
  const UpperBoundRegistry& bounds() const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return bounds_;
  }
  const Vocabulary& vocabulary() const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return vocabulary_;
  }
  SimulatedDfs& dfs() { return *dfs_; }
  QueryProcessor& processor() { return *processor_; }
  const DeltaIndex& delta_index() const { return *delta_; }
  // Denormalized O(1) sid -> row table the sid_resolve stage reads instead
  // of the B+-tree; populated at build and at every delta-merge commit,
  // checkpointed as sid_store.bin, rebuilt from the DB when the artifact
  // is missing/torn/stale.
  const SidStore& sid_store() const { return *sid_store_; }
  const Wal& wal() const { return *wal_; }
  // Slow-query ring buffer (internally thread-safe; always constructed,
  // disabled when Options::slow_query_ms <= 0).
  const SlowQueryLog& slow_query_log() const { return *slow_log_; }
  // Offline per-user location profile (all post locations per user),
  // backing the Def. 9 user distance score.
  const std::unordered_map<UserId, std::vector<GeoPoint>>& user_locations()
      const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return user_locations_;
  }
  const Options& options() const { return options_; }

 private:
  TkLusEngine() = default;

  // Post-query accounting (process metrics + slow-query log); called
  // outside mu_ — the log and registry are internally thread-safe.
  void RecordQueryObservability(const char* kind, const TkLusQuery& query,
                                const QueryStats& stats) const;

  // Shared tail of Build/Open: processor + caches + delta wiring + merge
  // thread. Called with the engine fields initialized, under the
  // (uncontended) construction-time exclusive lock.
  void FinishConstruction() TKLUS_REQUIRES(mu_);

  // Absorbs one post into the delta index and every derived in-memory
  // structure (graph, tracker, vocabulary, profiles, watermark). The
  // caller recomputes bounds_ once per batch.
  void ApplyPostLocked(const Post& post, const Tokenizer& tokenizer)
      TKLUS_REQUIRES(mu_);

  // Folds the current delta into the hybrid index + metadata DB; on
  // return the folded posts serve from the base index. Idempotent against
  // crash-recovery double-application: rows already in the DB are not
  // re-inserted, and postings merges prefer base over delta.
  Status FoldDeltaLocked() TKLUS_REQUIRES(merge_mu_) TKLUS_EXCLUDES(mu_);

  // Save's body: fold + write artifacts to `dir` + (same-dir) truncate.
  Status CheckpointLocked(const std::string& dir)
      TKLUS_REQUIRES(append_mu_, merge_mu_) TKLUS_EXCLUDES(mu_);

  void StartMergeThread();
  void StopMergeThread();
  void MergeLoop();
  void UpdateDeltaGaugesLocked() TKLUS_REQUIRES_SHARED(mu_);

  Options options_;
  bool owns_working_dir_ = false;
  // Engine-wide reader-writer lock (see the class comment). The
  // unique_ptr components below are wired once during Build/Open and
  // never reseated, so the pointers themselves need no guard; their
  // pointees are protected by the shared/exclusive discipline of the
  // public entry points (DFS, buffer pool, WAL and the popularity cache
  // are additionally synchronized internally or by append_mu_).
  mutable SharedMutex mu_{lockrank::kEngineMu, "mu_"};
  // Serializes appenders (WAL appends + validation) without blocking
  // readers; also held across checkpoint truncation so an acked record
  // can never be erased before its batch is inside a checkpoint.
  Mutex append_mu_{lockrank::kAppendMu, "append_mu_"};
  // Serializes delta folds and checkpoints (the background merge vs
  // Save/MergeNow).
  Mutex merge_mu_{lockrank::kMergeMu, "merge_mu_"};
  std::unique_ptr<SimulatedDfs> dfs_;
  std::unique_ptr<MetadataDb> db_;
  std::unique_ptr<HybridIndex> index_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<DeltaIndex> delta_;  // guarded by mu_ like the fields below
  // Read-optimized twin of db_'s committed rows (see storage/sid_store.h):
  // mutated only inside fold commits / construction (exclusive lock), read
  // lock-free by concurrent queries like the other mu_-disciplined state.
  std::unique_ptr<SidStore> sid_store_;
  SocialGraph graph_ TKLUS_GUARDED_BY(mu_);
  UpperBoundRegistry bounds_ TKLUS_GUARDED_BY(mu_);
  Vocabulary vocabulary_ TKLUS_GUARDED_BY(mu_);
  ThreadTracker tracker_ TKLUS_GUARDED_BY(mu_);
  int64_t max_sid_ TKLUS_GUARDED_BY(mu_) = INT64_MIN;
  std::unordered_map<UserId, std::vector<GeoPoint>> user_locations_
      TKLUS_GUARDED_BY(mu_);
  // φ(p) memo shared by all concurrent queries; internally thread-safe
  // (sharded locks), invalidated by AppendBatch's generation bump.
  // Null when Options::popularity_cache_entries == 0.
  std::unique_ptr<PopularityCache> popularity_cache_;
  std::unique_ptr<QueryProcessor> processor_;
  // Internally mutexed; recorded to outside mu_ after each query.
  std::unique_ptr<SlowQueryLog> slow_log_;

  // True once `working_dir` holds a complete checkpoint (Open(), or a
  // Save() into the working dir): only then may the merge truncate the
  // WAL — truncating without a checkpoint would erase acked batches.
  std::atomic<bool> has_checkpoint_{false};

  // Background merge thread: woken by AppendBatch when the delta crosses
  // Options::delta_merge_posts, stopped by the destructor.
  Mutex merge_wake_mu_{lockrank::kMergeWakeMu, "merge_wake_mu_"};
  CondVar merge_wake_cv_;
  bool merge_requested_ TKLUS_GUARDED_BY(merge_wake_mu_) = false;
  bool stop_merge_ TKLUS_GUARDED_BY(merge_wake_mu_) = false;
  std::thread merge_thread_;

  // Cached metric handles (process-global families).
  Gauge* delta_posts_gauge_ = nullptr;
  Gauge* delta_bytes_gauge_ = nullptr;
  Counter* delta_merges_total_ = nullptr;
  Gauge* sid_store_entries_gauge_ = nullptr;
  Gauge* sid_store_bytes_gauge_ = nullptr;
};

}  // namespace tklus

#endif  // TKLUS_CORE_ENGINE_H_
