#ifndef TKLUS_INDEX_POSTING_H_
#define TKLUS_INDEX_POSTING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "model/post.h"

namespace tklus {

// One postings entry <TID, TF> (§IV-B.1): the tweet id (timestamp) and the
// term frequency of the keyword in that tweet.
struct Posting {
  TweetId tid = 0;
  uint32_t tf = 0;

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.tid == b.tid && a.tf == b.tf;
  }
};

// Binary codec for a postings list sorted by ascending tid:
// varint(count), then per posting varint(tid delta) varint(tf). Delta
// coding exploits the timestamp ordering the reducer guarantees (Alg. 3
// sorts postings by timestamp before emitting).
std::string EncodePostings(const std::vector<Posting>& postings);

// Inverse of EncodePostings. Fails on truncated or trailing bytes.
Result<std::vector<Posting>> DecodePostings(std::string_view data);

// Varint primitives (LEB128, unsigned), exposed for tests and reuse.
void PutVarint64(std::string* out, uint64_t value);
// Advances *pos; false on truncation.
bool GetVarint64(std::string_view data, size_t* pos, uint64_t* value);

}  // namespace tklus

#endif  // TKLUS_INDEX_POSTING_H_
