#ifndef TKLUS_CORE_KENDALL_H_
#define TKLUS_CORE_KENDALL_H_

#include <cstdint>
#include <vector>

#include "model/post.h"

namespace tklus {

// The paper's variant Kendall tau rank-correlation coefficient for two
// top-k result lists that need not contain the same users (§VI-B3): each
// ranking is extended with the other's missing users, all of which share
// the next rank (ties), and tau = (cp - dp) / numPairs over the extended
// universe. A pair is concordant when both rankings order it the same way
// (or both tie it), discordant when they order it oppositely; pairs tied
// in exactly one ranking count toward neither. Returns 1.0 for two empty
// rankings.
double KendallTauVariant(const std::vector<UserId>& ranking_a,
                         const std::vector<UserId>& ranking_b);

}  // namespace tklus

#endif  // TKLUS_CORE_KENDALL_H_
