// Fixture: the three sanctioned ways to touch a GUARDED_BY member — a
// guard the function opens itself, a TKLUS_REQUIRES annotation, and the
// entry-held propagation (Helper is private and every same-class caller
// demonstrably holds mu_ at the call site).
namespace tklus {

class Widget {
 public:
  int Get() {
    MutexLock lock(&mu_);
    return Helper();  // Helper inherits mu_ from this call site
  }

  int GetLocked() TKLUS_REQUIRES(mu_) { return value_; }

 private:
  int Helper() { return value_ + 1; }  // ok: proven held on entry

  Mutex mu_;
  int value_ TKLUS_GUARDED_BY(mu_) = 0;
};

}  // namespace tklus
