#include "index/delta_index.h"

#include <algorithm>

#include "geo/geohash.h"

namespace tklus {

DeltaIndex::DeltaIndex(Options options)
    : options_(options), tokenizer_(options.tokenizer) {}

std::string DeltaIndex::Key(const std::string& cell, const std::string& term) {
  std::string key;
  key.reserve(cell.size() + 1 + term.size());
  key.append(cell);
  key.push_back('\0');
  key.append(term);
  return key;
}

void DeltaIndex::Apply(const Post& post) {
  auto [it, inserted] = posts_.emplace(post.sid, post);
  if (!inserted) return;  // replay idempotency
  approx_bytes_ += sizeof(Post) + post.text.size() + 2 * sizeof(TweetId);

  if (post.rsid != kNoId) {
    children_[post.rsid].push_back(post.sid);
  }
  if (!post.HasLocation()) return;
  const std::string cell =
      geohash::Encode(post.location, options_.geohash_length);
  for (const auto& [term, tf] : tokenizer_.TermFrequencies(post.text)) {
    std::vector<Posting>& list = postings_[Key(cell, term)];
    // Posts arrive in ascending sid (== tid) order, so appending keeps
    // every list sorted.
    list.push_back(Posting{post.sid, static_cast<uint32_t>(tf)});
    approx_bytes_ += sizeof(Posting) + term.size();
  }
}

void DeltaIndex::DropThrough(TweetId sid) {
  posts_.erase(posts_.begin(), posts_.upper_bound(sid));
  for (auto it = postings_.begin(); it != postings_.end();) {
    std::vector<Posting>& list = it->second;
    list.erase(std::remove_if(list.begin(), list.end(),
                              [sid](const Posting& p) { return p.tid <= sid; }),
               list.end());
    it = list.empty() ? postings_.erase(it) : std::next(it);
  }
  for (auto it = children_.begin(); it != children_.end();) {
    std::vector<TweetId>& kids = it->second;
    kids.erase(
        std::remove_if(kids.begin(), kids.end(),
                       [sid](TweetId child) { return child <= sid; }),
        kids.end());
    it = kids.empty() ? children_.erase(it) : std::next(it);
  }
  // Recompute the footprint estimate from what is left.
  size_t bytes = 0;
  for (const auto& [id, post] : posts_) {
    bytes += sizeof(Post) + post.text.size() + 2 * sizeof(TweetId);
  }
  for (const auto& [key, list] : postings_) {
    bytes += list.size() * sizeof(Posting) + key.size();
  }
  approx_bytes_ = bytes;
}

TweetId DeltaIndex::max_sid() const {
  return posts_.empty() ? kNoId : posts_.rbegin()->first;
}

Dataset DeltaIndex::Snapshot() const {
  Dataset out;
  for (const auto& [sid, post] : posts_) out.Add(post);
  return out;
}

std::vector<Posting> DeltaIndex::FetchTermPostings(
    const std::vector<std::string>& cells, const std::string& term) const {
  std::vector<Posting> out;
  for (const std::string& cell : cells) {
    const auto it = postings_.find(Key(cell, term));
    if (it == postings_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  // Cells are disjoint and each list is sorted, but the cell order is the
  // caller's cover order — restore global tid order.
  std::sort(out.begin(), out.end(),
            [](const Posting& a, const Posting& b) { return a.tid < b.tid; });
  return out;
}

const Post* DeltaIndex::FindBySid(TweetId sid) const {
  const auto it = posts_.find(sid);
  return it == posts_.end() ? nullptr : &it->second;
}

void DeltaIndex::AppendChildren(TweetId rsid,
                                std::vector<TweetId>* out) const {
  const auto it = children_.find(rsid);
  if (it == children_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

std::vector<Posting> MergeDeltaPostings(const std::vector<Posting>& base,
                                        const std::vector<Posting>& delta) {
  if (delta.empty()) return base;
  if (base.empty()) return delta;
  std::vector<Posting> out;
  out.reserve(base.size() + delta.size());
  size_t i = 0, j = 0;
  while (i < base.size() && j < delta.size()) {
    if (base[i].tid < delta[j].tid) {
      out.push_back(base[i++]);
    } else if (delta[j].tid < base[i].tid) {
      out.push_back(delta[j++]);
    } else {
      out.push_back(base[i++]);  // duplicate: base wins
      ++j;
    }
  }
  out.insert(out.end(), base.begin() + i, base.end());
  out.insert(out.end(), delta.begin() + j, delta.end());
  return out;
}

}  // namespace tklus
