#ifndef TKLUS_COMMON_LOGGING_H_
#define TKLUS_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace tklus {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Stream-style log sink; emits on destruction. If `fatal`, aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tklus

#define TKLUS_LOG(level)                                                     \
  ::tklus::internal_logging::LogMessage(::tklus::LogLevel::k##level,         \
                                        __FILE__, __LINE__)

// Invariant check that stays on in release builds.
#define TKLUS_CHECK(cond)                                                    \
  if (!(cond))                                                               \
  ::tklus::internal_logging::LogMessage(::tklus::LogLevel::kError, __FILE__, \
                                        __LINE__, /*fatal=*/true)            \
      << "Check failed: " #cond " "

#endif  // TKLUS_COMMON_LOGGING_H_
