# Empty compiler generated dependencies file for bench_table4_geohash_example.
# This may be replaced when dependencies are built.
