#ifndef TKLUS_TOOLS_ANALYZE_SOURCE_MODEL_H_
#define TKLUS_TOOLS_ANALYZE_SOURCE_MODEL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tklus::analyze {

// One lexical token. The lexer strips comments and collapses string/char
// literals into single tokens, so rules never false-positive on a banned
// spelling inside a comment or a log message — the main precision win
// over the grep-based lint this analyzer replaced.
struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line;
};

// An `#include` directive, extracted before tokenization.
struct IncludeDirective {
  std::string path;  // as written between the delimiters
  bool quoted;       // "module/header.h" (true) vs <vector> (false)
  int line;
};

// One RAII lock guard (`MutexLock` / `ReaderMutexLock` /
// `WriterMutexLock`) as seen by the statement model: the guarded member
// is the last identifier of the constructor argument, so
// `MutexLock lock(&append_mu_)` and `WriterMutexLock l(&engine->mu_)`
// resolve to `append_mu_` and `mu_`.
struct HeldGuard {
  std::string member;
  std::string guard_type;  // the RAII class name as written
  bool exclusive;          // false only for ReaderMutexLock
  int line;
};

// One guard acquisition together with the guards already held (in
// acquisition order, outermost first) at that statement.
struct GuardAcquire {
  HeldGuard guard;
  std::vector<HeldGuard> held;
};

// One call made while at least one guard is in scope. `callee` is the
// final identifier of the call chain (`wal_->Append(..)` -> `Append`).
struct GuardedCall {
  std::string callee;
  int line;
  std::vector<HeldGuard> held;
};

// The flow-aware view of one function: every guard acquisition with its
// in-scope predecessors, and every call made under a guard. Guard
// lifetimes follow brace scopes (RAII), so a guard declared inside a
// nested block stops being "held" at the block's closing brace. The
// model is intraprocedural: a lock held by a caller is invisible here.
struct FunctionLockModel {
  std::string name;  // best-effort qualified name; may be empty
  int line;
  std::vector<GuardAcquire> acquisitions;
  std::vector<GuardedCall> calls;
};

// The lexical model of one file that rules run against.
struct SourceFile {
  std::string path;    // forward-slash path relative to the scan root
  std::string module;  // "storage" for src/storage/...; "" outside src/
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  // Statement model, filled by the analyzer after lexing (rules read it;
  // unit tests may call BuildLockModel directly).
  std::vector<FunctionLockModel> functions;
};

// Lexes `text` into the model. `rel_path` must already be normalized to
// forward slashes and relative to the scan root. Backslash-newline
// splices are resolved first (a spliced identifier is one token and a
// line comment ending in `\` swallows its continuation, exactly like the
// preprocessor), and raw string literals — including the u8R/uR/UR/LR
// encoding-prefixed forms and d-char delimiters — collapse to a single
// `<raw-string>` token.
SourceFile LexFile(std::string rel_path, std::string_view text);

// Builds the function-scope statement model over a lexed file.
std::vector<FunctionLockModel> BuildLockModel(const SourceFile& file);

// True if `path` ends with the path suffix `suffix` on a component
// boundary (so "storage/buffer_pool.h" matches "src/storage/buffer_pool.h"
// but not "src/storage/other_buffer_pool.h").
bool PathEndsWith(std::string_view path, std::string_view suffix);

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_SOURCE_MODEL_H_
