# Empty dependencies file for tklus_model.
# This may be replaced when dependencies are built.
