#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace tklus {

uint64_t TraceSpan::Counter(std::string_view counter_name) const {
  for (const auto& [name, value] : counters) {
    if (name == counter_name) return value;
  }
  return 0;
}

const TraceSpan* Trace::Find(std::string_view name) const {
  for (const TraceSpan& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::vector<const TraceSpan*> Trace::ChildrenOf(uint32_t parent_id) const {
  std::vector<const TraceSpan*> children;
  for (const TraceSpan& span : spans) {
    if (span.parent == parent_id) children.push_back(&span);
  }
  return children;
}

uint64_t Trace::CounterTotal(std::string_view counter_name) const {
  uint64_t total = 0;
  for (const TraceSpan& span : spans) total += span.Counter(counter_name);
  return total;
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Trace::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (i > 0) out += ", ";
    out += "{\"id\": " + std::to_string(span.id) +
           ", \"parent\": " + std::to_string(span.parent) + ", \"name\": ";
    AppendJsonString(&out, span.name);
    out += ", \"start_ns\": " + std::to_string(span.start_ns) +
           ", \"duration_ns\": " + std::to_string(span.duration_ns);
    if (!span.counters.empty()) {
      out += ", \"counters\": {";
      for (size_t c = 0; c < span.counters.size(); ++c) {
        if (c > 0) out += ", ";
        AppendJsonString(&out, span.counters[c].first);
        out += ": " + std::to_string(span.counters[c].second);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]";
  return out;
}

void Tracer::Span::AddCounter(std::string_view name, uint64_t delta) {
  if (tracer_ != nullptr) tracer_->AddCounter(id_, name, delta);
}

void Tracer::Span::End() {
  if (tracer_ != nullptr) {
    tracer_->EndSpan(id_);
    tracer_ = nullptr;
    id_ = 0;
  }
}

Tracer::Span Tracer::StartSpan(std::string_view name) {
  if (trace_ == nullptr) return Span{};
  TraceSpan span;
  span.id = static_cast<uint32_t>(trace_->spans.size() + 1);
  span.parent = open_.empty() ? 0 : open_.back();
  span.name = std::string(name);
  span.start_ns = clock_->NowNanos();
  trace_->spans.push_back(std::move(span));
  open_.push_back(trace_->spans.back().id);
  return Span{this, trace_->spans.back().id};
}

void Tracer::EndSpan(uint32_t id) {
  TraceSpan& span = trace_->spans[id - 1];
  span.duration_ns = clock_->NowNanos() - span.start_ns;
  // RAII guards close innermost-first; tolerate a skipped End (e.g. a
  // moved-from guard) by popping through to the ending span.
  while (!open_.empty()) {
    const uint32_t top = open_.back();
    open_.pop_back();
    if (top == id) break;
  }
}

void Tracer::AddCounter(uint32_t id, std::string_view name, uint64_t delta) {
  TraceSpan& span = trace_->spans[id - 1];
  for (auto& [existing, value] : span.counters) {
    if (existing == name) {
      value += delta;
      return;
    }
  }
  span.counters.emplace_back(std::string(name), delta);
}

}  // namespace tklus
