#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "obs/stopwatch.h"
#include "server/protocol.h"

namespace tklus::server {
namespace {

// All-workers-busy backpressure cap: accepted connections wait in the
// queue, and beyond this the acceptor simply stops pulling from the
// kernel backlog (clients keep queueing there, then get RST at the
// kernel's limit — open-loop overload sheds at the edge, it does not
// balloon server memory).
constexpr size_t kMaxPendingConnections = 256;

}  // namespace

Result<std::unique_ptr<RequestServer>> RequestServer::Start(
    ShardedEngine* engine, Options options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("RequestServer needs an engine");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  auto server = std::unique_ptr<RequestServer>(new RequestServer());
  server->engine_ = engine;
  server->options_ = options;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    const Status status =
        Status::IoError(std::string("setsockopt: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const Status status =
        Status::IoError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->requests_total_ = MetricsRegistry::Global().GetCounter(
      "tklus_server_requests_total",
      "Requests served by the query server (all kinds, all outcomes).");

  server->workers_.reserve(static_cast<size_t>(options.num_workers));
  for (int w = 0; w < options.num_workers; ++w) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

RequestServer::~RequestServer() { Stop(); }

void RequestServer::Stop() {
  {
    MutexLock lock(&queue_mu_);
    if (stopping_) return;
    stopping_ = true;
    // Unblock workers parked in recv() on idle connections: every fd in
    // active_fds_ is still open (workers deregister before closing), so
    // shutdown makes the blocked read return EOF and the worker exit.
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Unblock accept(): shutdown makes a blocked accept return on Linux,
  // and close covers the race where the acceptor was between calls.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  queue_cv_.SignalAll();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Connections accepted but never picked up: close without serving.
  MutexLock lock(&queue_mu_);
  for (const int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
}

void RequestServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed/shut down listener: normal termination path.
      return;
    }
    MutexLock lock(&queue_mu_);
    if (stopping_ || pending_fds_.size() >= kMaxPendingConnections) {
      ::close(fd);
      if (stopping_) return;
      continue;
    }
    pending_fds_.push_back(fd);
    queue_cv_.Signal();
  }
}

void RequestServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(&queue_mu_);
      while (pending_fds_.empty() && !stopping_) queue_cv_.Wait(&queue_mu_);
      // Once stopping, never pick up new work — a fresh connection could
      // block this worker in recv() after Stop()'s shutdown sweep ran.
      // Stop() closes whatever is left queued after the joins.
      if (stopping_) return;
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    ServeConnection(fd);
  }
}

void RequestServer::ServeConnection(int fd) {
  {
    MutexLock lock(&queue_mu_);
    active_fds_.push_back(fd);
    // Stop() may have swept active_fds_ between this worker popping the
    // fd and registering it; mirror the sweep so the reads below see EOF.
    if (stopping_) ::shutdown(fd, SHUT_RDWR);
  }
  std::string payload;
  for (;;) {
    bool eof = false;
    const Status read =
        ReadFrame(fd, options_.max_frame_bytes, &payload, &eof);
    if (!read.ok() || eof) break;
    const Status written = WriteFrame(fd, HandleRequest(payload));
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    requests_total_->Increment();
    if (!written.ok()) break;
    // Between requests, check for shutdown so a chatty client cannot pin
    // its worker past Stop().
    MutexLock lock(&queue_mu_);
    if (stopping_) break;
  }
  {
    MutexLock lock(&queue_mu_);
    active_fds_.erase(std::find(active_fds_.begin(), active_fds_.end(), fd));
  }
  ::close(fd);
}

std::string RequestServer::HandleRequest(const std::string& payload) {
  WireResponse response;
  WireRequest request;
  const Status decoded = DecodeRequest(payload, &request);
  if (!decoded.ok()) {
    response.code = static_cast<int32_t>(decoded.code());
    response.message = decoded.message();
    return EncodeResponse(response);
  }
  Stopwatch timer;
  if (request.kind == RequestKind::kUserQuery) {
    auto result = engine_->Query(request.query);
    if (!result.ok()) {
      response.code = static_cast<int32_t>(result.status().code());
      response.message = result.status().message();
    } else {
      response.degraded = result->degraded;
      response.users.reserve(result->users.size());
      for (const RankedUser& u : result->users) {
        response.users.push_back(WireUser{u.uid, u.score});
      }
    }
  } else {
    auto result = engine_->QueryTweets(request.query);
    if (!result.ok()) {
      response.code = static_cast<int32_t>(result.status().code());
      response.message = result.status().message();
    } else {
      response.degraded = result->degraded;
      response.tweets.reserve(result->tweets.size());
      for (const RankedTweet& t : result->tweets) {
        response.tweets.push_back(
            WireTweet{t.sid, t.uid, t.score, t.distance_km});
      }
    }
  }
  response.server_ms = timer.ElapsedMillis();
  return EncodeResponse(response);
}

}  // namespace tklus::server
