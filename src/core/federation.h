#ifndef TKLUS_CORE_FEDERATION_H_
#define TKLUS_CORE_FEDERATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/query.h"

namespace tklus {

// Cross-platform TkLUS (§VIII future work: "make the search for local
// users across the platform boundary, such that more informative query
// results can be obtained by involving different social networks").
// Each platform runs its own TkLusEngine over its own corpus; a federated
// query fans out to every platform and merges the per-platform top-k lists
// into one ranking. User ids are platform-scoped, so results carry the
// platform name.
//
// Score comparability: each engine scores with its own ScoringParams; use
// the same alpha/N/epsilon across platforms (or accept that the merged
// order reflects per-platform calibration, as a real cross-network search
// would).
struct FederatedUser {
  std::string platform;
  UserId uid = 0;
  double score = 0.0;
};

struct FederatedResult {
  std::vector<FederatedUser> users;  // descending score, at most k
  // Per-platform query stats, index-aligned with the platform list.
  std::vector<QueryStats> platform_stats;
};

class FederatedEngine {
 public:
  FederatedEngine() = default;

  // Registers a platform. The engine must outlive the federation.
  void AddPlatform(std::string name, TkLusEngine* engine) {
    platforms_.push_back(Platform{std::move(name), engine});
  }

  size_t platform_count() const { return platforms_.size(); }

  // Fans the query out to every platform (each asked for its own top-k)
  // and merges by score.
  Result<FederatedResult> Query(const TkLusQuery& query) const;

 private:
  struct Platform {
    std::string name;
    TkLusEngine* engine;
  };
  std::vector<Platform> platforms_;
};

}  // namespace tklus

#endif  // TKLUS_CORE_FEDERATION_H_
