// Figure 5: hybrid index construction time versus geohash encoding length
// (1..4). The paper's findings: construction time is insensitive to the
// geohash configuration, and the 3-worker MapReduce build beats a
// centralized single-thread builder (the I³ / IR-tree comparison row; see
// DESIGN.md §2 for the substitution).
#include <cstdio>
#include <thread>

#include "baseline/centralized_builder.h"
#include "bench_util.h"
#include "obs/stopwatch.h"
#include "dfs/dfs.h"
#include "index/hybrid_index.h"

int main() {
  using namespace tklus;
  bench::Banner("Figure 5 — index construction time vs geohash length",
                "flat across lengths 1-4; distributed build ~ an order of "
                "magnitude faster than a centralized builder at scale");
  // Index construction has no query phase, so it can afford a larger
  // corpus; parallel building only pays off once the map phase dominates
  // the fixed shuffle overhead.
  auto scale = bench::ScaleFromEnv();
  if (std::getenv("TKLUS_BENCH_TWEETS") == nullptr) {
    scale.tweets *= 4;
    scale.users *= 4;
  }
  const auto corpus = bench::MakeCorpus(scale);
  std::printf("corpus: %zu tweets; simulated cluster: 3 MapReduce workers "
              "(Table III)\n\n", corpus.dataset.size());

  std::printf("%-8s %-18s %-12s %-12s %-12s %-10s\n", "length",
              "mapreduce total s", "map s", "shuffle s", "reduce s",
              "lists");
  for (int length = 1; length <= 4; ++length) {
    SimulatedDfs dfs;
    HybridIndex::Options opts;
    opts.geohash_length = length;
    opts.mapreduce_workers = 3;
    Stopwatch timer;
    auto index = HybridIndex::Build(corpus.dataset, &dfs, opts);
    if (!index.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    const IndexBuildStats& stats = (*index)->build_stats();
    std::printf("%-8d %-18.3f %-12.3f %-12.3f %-12.3f %-10llu\n", length,
                timer.ElapsedSeconds(), stats.map_seconds,
                stats.shuffle_seconds, stats.reduce_seconds,
                static_cast<unsigned long long>(stats.postings_lists));
  }

  std::printf("\ncentralized single-thread builder (I3/IR-tree stand-in), "
              "geohash length 4:\n");
  const CentralizedBuildResult centralized =
      BuildCentralizedIndex(corpus.dataset, 4, TokenizerOptions{});
  std::printf("  %.3f s, %llu lists\n", centralized.seconds,
              static_cast<unsigned long long>(centralized.postings_lists));

  // Worker scaling (the "scalable framework" claim). On a single-core
  // host, worker threads time-slice one CPU and no wall-clock speedup is
  // observable — the framework's parallel correctness is covered by
  // mapreduce_test; the paper's Fig. 5 speedup needs real cores.
  std::printf("\nMapReduce worker scaling at length 4 (host has %u "
              "hardware threads):\n",
              std::thread::hardware_concurrency());
  std::printf("%-10s %-12s\n", "workers", "total s");
  for (const int workers : {1, 2, 3, 6}) {
    SimulatedDfs dfs;
    HybridIndex::Options opts;
    opts.geohash_length = 4;
    opts.mapreduce_workers = workers;
    Stopwatch timer;
    auto index = HybridIndex::Build(corpus.dataset, &dfs, opts);
    if (!index.ok()) return 1;
    std::printf("%-10d %-12.3f\n", workers, timer.ElapsedSeconds());
  }
  return 0;
}
