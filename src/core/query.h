#ifndef TKLUS_CORE_QUERY_H_
#define TKLUS_CORE_QUERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geo/point.h"
#include "model/post.h"

namespace tklus {

struct Trace;  // obs/trace.h; include it to inspect QueryStats::trace

// Span and counter names the query processor records when
// TkLusQuery::trace is set. The five stage spans tile the root "query"
// span, and every stage carries kCounterDbPageReads/kCounterDfsBlockReads
// deltas, so per-stage I/O counters sum to the whole-query totals.
namespace stage {
inline constexpr char kQuery[] = "query";
inline constexpr char kCover[] = "cover";
inline constexpr char kPostingsFetch[] = "postings_fetch";
inline constexpr char kSidResolve[] = "sid_resolve";
inline constexpr char kThreadConstruction[] = "thread_construction";
inline constexpr char kScoreTopk[] = "score_topk";
// Sharded-query spans (ShardedEngine): one kShardFetch per shard the
// cover touches (wrapping that shard's kPostingsFetch/kSidResolve), then
// one kShardMerge for the tid-ordered candidate merge. The ranking stages
// above follow under the same root span.
inline constexpr char kShardFetch[] = "shard_fetch";
inline constexpr char kShardMerge[] = "shard_merge";

inline constexpr char kCounterDbPageReads[] = "db_page_reads";
inline constexpr char kCounterDfsBlockReads[] = "dfs_block_reads";
}  // namespace stage

// Multi-keyword matching semantics (§V-A): AND requires all keywords in a
// candidate tweet, OR any of them.
enum class Semantics { kAnd, kOr };

// User ranking method: Sum Score (Def. 7, Alg. 4) or Maximum Score
// (Def. 8, Alg. 5 with upper-bound pruning).
enum class Ranking { kSum, kMax };

// Temporal extension of TkLUS (§VIII future work): "we can define a query
// for a particular period of time and only search the tweets that are
// posted in that period. Also, we can ... give priority to more recent
// tweets (and their users) in ranking." Tweet ids are timestamps (§IV-A),
// so the window filters directly on posting-list entries.
struct TemporalOptions {
  // Closed interval on tweet timestamps; unset bounds are open.
  std::optional<int64_t> begin;
  std::optional<int64_t> end;
  // Recency weighting: each tweet's keyword relevance is multiplied by
  // 0.5^((reference - sid) / half_life). Requires `reference` when set.
  std::optional<double> half_life;
  std::optional<int64_t> reference;

  bool Active() const {
    return begin.has_value() || end.has_value() || half_life.has_value();
  }
  bool InWindow(int64_t sid) const {
    if (begin && sid < *begin) return false;
    if (end && sid > *end) return false;
    return true;
  }
};

// A top-k local user search q(l, r, W) (§II-B).
struct TkLusQuery {
  GeoPoint location;
  double radius_km = 10.0;
  std::vector<std::string> keywords;  // raw; normalized by the processor
  int k = 10;
  Semantics semantics = Semantics::kOr;
  Ranking ranking = Ranking::kSum;
  TemporalOptions temporal;
  // Attach a UserScoreBreakdown to every returned user.
  bool explain = false;
  // Record a per-stage span tree into QueryStats::trace (obs/trace.h).
  bool trace = false;
};

// Per-user score evidence, filled when TkLusQuery::explain is set: how
// the Def. 10 mix decomposes and which tweet carried the user.
struct UserScoreBreakdown {
  double rho = 0.0;             // keyword part (rho_s or rho_m)
  double delta = 0.0;           // Def. 9 user distance score
  size_t matched_tweets = 0;    // candidate tweets within the radius
  TweetId best_tweet = 0;       // tweet with the highest rho(p, q)
  double best_tweet_rho = 0.0;
};

struct RankedUser {
  UserId uid = 0;
  double score = 0.0;
  std::optional<UserScoreBreakdown> why;  // set when query.explain

  friend bool operator==(const RankedUser& a, const RankedUser& b) {
    return a.uid == b.uid && a.score == b.score;
  }
};

// Per-query execution statistics, the quantities behind Figures 7-12.
struct QueryStats {
  size_t cover_cells = 0;
  size_t postings_lists_fetched = 0;
  size_t candidates = 0;        // postings after AND/OR combination
  size_t within_radius = 0;
  size_t threads_built = 0;
  size_t threads_pruned = 0;    // Alg. 5 line 19 skips
  // Engine popularity-cache traffic for this query: hits are candidates
  // whose φ(p) was served memoized (no thread construction, no rsid
  // descents); misses were computed and installed. Both zero when the
  // cache is disabled.
  uint64_t popularity_cache_hits = 0;
  uint64_t popularity_cache_misses = 0;
  // sid_resolve traffic split: candidates served by the O(1) SidStore vs
  // rows that had to fall back to the metadata DB's B+-tree (neither the
  // store nor the delta overlay held the sid). Fallback rows are zero in
  // steady state — nonzero means the store is stale relative to the DB.
  uint64_t sid_store_hits = 0;
  uint64_t sid_store_fallback_rows = 0;
  uint64_t db_page_reads = 0;   // metadata DB physical reads
  uint64_t dfs_block_reads = 0; // postings fetch reads
  // Fault-tolerance accounting: DFS reads re-issued after a transient
  // fault, and faults the injector raised during this query (both zero
  // outside fault-injection runs).
  uint64_t dfs_read_retries = 0;
  uint64_t injected_faults = 0;
  double elapsed_ms = 0.0;
  // Stage span tree, set only when TkLusQuery::trace was requested.
  // Shared (not owned) so results stay cheap to copy.
  std::shared_ptr<const Trace> trace;

  // Both query entry points (Process and ProcessTweets) start from this
  // one reset, so every counter — including the I/O deltas that
  // ProcessTweets historically left at zero — is accounted identically.
  void Reset() { *this = QueryStats(); }
};

struct QueryResult {
  std::vector<RankedUser> users;  // descending score, at most k
  QueryStats stats;

  std::vector<UserId> UserIds() const {
    std::vector<UserId> ids;
    ids.reserve(users.size());
    for (const RankedUser& u : users) ids.push_back(u.uid);
    return ids;
  }
};

// Tweet-level spatial-keyword search: the "straightforward approach" the
// paper's introduction contrasts TkLUS against ("directly retrieve tweets
// based on query keywords ... can return too many original tweets").
// Tweets are ranked by alpha * rho(p,q) + (1-alpha) * delta(p,q).
struct RankedTweet {
  TweetId sid = 0;
  UserId uid = 0;
  double score = 0.0;
  double distance_km = 0.0;
};

struct TweetQueryResult {
  std::vector<RankedTweet> tweets;  // descending score, at most k
  QueryStats stats;
};

}  // namespace tklus

#endif  // TKLUS_CORE_QUERY_H_
