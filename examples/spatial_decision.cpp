// Spatial decision support (§I): compare candidate neighbourhoods by how
// much locally-voiced expertise exists for the amenities you care about.
// For each candidate location, run TkLUS queries per amenity and aggregate
// the returned user scores into a simple "local knowledge" indicator.
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/tweet_generator.h"

using tklus::GeoPoint;
using tklus::TkLusEngine;
using tklus::TkLusQuery;
using tklus::datagen::TweetGenerator;

int main() {
  TweetGenerator::Options gen;
  gen.num_tweets = 30000;
  gen.num_users = 1000;
  gen.num_cities = 6;  // toronto, newyork, losangeles, london, paris, seoul
  std::printf("generating %zu tweets...\n", gen.num_tweets);
  const auto corpus = TweetGenerator::Generate(gen);

  auto engine = TkLusEngine::Build(corpus.dataset);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::string> amenities = {"restaurant", "cafe", "park",
                                              "gym"};
  struct Candidate {
    const char* name;
    GeoPoint where;
  };
  const std::vector<Candidate> neighbourhoods = {
      {"Toronto downtown", {43.6839, -79.3736}},
      {"London centre", {51.5074, -0.1278}},
      {"Paris centre", {48.8566, 2.3522}},
  };

  std::printf("\n%-18s", "neighbourhood");
  for (const auto& a : amenities) std::printf(" %12s", a.c_str());
  std::printf(" %12s\n", "overall");

  for (const Candidate& place : neighbourhoods) {
    std::printf("%-18s", place.name);
    double overall = 0;
    for (const std::string& amenity : amenities) {
      TkLusQuery query;
      query.location = place.where;
      query.radius_km = 8.0;
      query.keywords = {amenity};
      query.k = 5;
      auto result = (*engine)->Query(query);
      double indicator = 0;
      if (result.ok()) {
        for (const auto& user : result->users) indicator += user.score;
      }
      overall += indicator;
      std::printf(" %12.3f", indicator);
    }
    std::printf(" %12.3f\n", overall);
  }
  std::printf(
      "\n(each cell: sum of top-5 local user scores for that amenity — a\n"
      "higher value means more locally-knowledgeable users to consult)\n");
  return 0;
}
