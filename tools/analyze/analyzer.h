#ifndef TKLUS_TOOLS_ANALYZE_ANALYZER_H_
#define TKLUS_TOOLS_ANALYZE_ANALYZER_H_

#include <string>
#include <vector>

#include "analyze/rules.h"
#include "common/status.h"

namespace tklus::analyze {

// Scan configuration: a root directory, scan paths relative to it, and
// optional explicit manifests. When `manifest` is empty the analyzer
// looks for `<root>/layers.conf` (fixture roots), then
// `<root>/tools/analyze/layers.conf` (the real tree); `lockorder`
// resolves the same way against lockorder.conf. `jobs` caps the scan
// worker threads (0 = pick from hardware_concurrency).
struct AnalyzerOptions {
  std::string root = ".";
  std::vector<std::string> paths;  // default: {"src"}
  std::string manifest;
  std::string lockorder;
  unsigned jobs = 0;
};

// Loads `path` as a layering manifest: `module: dep dep ...` lines,
// `#` comments. Declaring a module with no deps is `module:`.
Result<AnalyzerContext> LoadManifest(const std::string& path);

// Loads `path` as a lock-order manifest. Directives (with `#` comments):
//   lock NAME [PATH_SUFFIX]   declare a lock, optionally scoped to files
//                             whose path ends with PATH_SUFFIX
//   order A B [C ...]         A may be held when acquiring B, B when
//                             acquiring C, ... (edges of the DAG)
//   io-symbol NAME...         blocking call names for io-under-lock
//   io-lock NAME...           declared locks the io symbols are banned
//                             under (any mode)
// The declared order is cycle-checked at load — a cyclic "order" is a
// manifest bug, not a tree finding — and the returned config carries the
// transitive closure.
Result<LockOrderConfig> LoadLockOrderConfig(const std::string& path);

// Lexes every .h/.cc/.cpp under the scan paths (sorted, so output is
// deterministic), builds the statement model, and runs the full rule set
// over each file — files are analyzed in parallel on a small thread pool
// (rules are pure, so scan order never changes the outcome).
// Diagnostics come back sorted by (path, line, rule).
Result<std::vector<Diagnostic>> RunAnalysis(const AnalyzerOptions& options);

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_ANALYZER_H_
