#ifndef TKLUS_COMMON_STATUS_H_
#define TKLUS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace tklus {

// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  // A transient failure (data node momentarily down, lease lost): the same
  // operation may well succeed if retried, unlike kIoError which is
  // treated as permanent. Retry policies only retry kUnavailable.
  kUnavailable,
  kCorruption,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

// Returns a stable human-readable name, e.g. "IO_ERROR".
const char* StatusCodeName(StatusCode code);

// A lightweight status object in the style of absl::Status. Functions that
// can fail return a Status (or Result<T>); exceptions are not used on
// expected failure paths.
//
// The class itself is [[nodiscard]], so *every* function returning Status
// (or Result<T>) is ignored-result-checked by the compiler — silently
// dropping an error from a fallible call is a build warning, and an error
// under TKLUS_WERROR. A call site that genuinely cannot act on the error
// (e.g. best-effort cleanup in a destructor) must say so explicitly by
// discarding through a named cast; scripts/lint.sh bans bare `(void)`
// discards in favor of the self-documenting form:
//   st.IgnoreError();
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "IO_ERROR: <message>".
  std::string ToString() const;

  // Explicitly discards the status. The only sanctioned way to drop an
  // error: it names the intent at the call site and is greppable, unlike a
  // bare (void) cast. Use on best-effort paths only (destructors, cleanup
  // after a primary error).
  void IgnoreError() const {}

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> carries either a value or an error Status (absl::StatusOr-like).
// [[nodiscard]] for the same reason as Status: a discarded Result is a
// swallowed error (and a wasted computation).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tklus

// Propagates a non-OK status to the caller.
#define TKLUS_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::tklus::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#endif  // TKLUS_COMMON_STATUS_H_
