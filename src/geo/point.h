#ifndef TKLUS_GEO_POINT_H_
#define TKLUS_GEO_POINT_H_

#include <algorithm>

namespace tklus {

// A WGS84 coordinate. Latitude in [-90, 90], longitude in [-180, 180].
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;

  friend bool operator==(const GeoPoint& a, const GeoPoint& b) {
    return a.lat == b.lat && a.lon == b.lon;
  }
};

// Axis-aligned lat/lon rectangle (closed on min edges, open-ish semantics
// do not matter for covering/pruning uses).
struct BoundingBox {
  double min_lat = -90.0;
  double max_lat = 90.0;
  double min_lon = -180.0;
  double max_lon = 180.0;

  bool Contains(const GeoPoint& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon &&
           p.lon <= max_lon;
  }

  bool Intersects(const BoundingBox& o) const {
    return min_lat <= o.max_lat && o.min_lat <= max_lat &&
           min_lon <= o.max_lon && o.min_lon <= max_lon;
  }

  GeoPoint Center() const {
    return GeoPoint{(min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0};
  }

  // Closest point of the box to `p` (clamping).
  GeoPoint Clamp(const GeoPoint& p) const {
    return GeoPoint{std::max(min_lat, std::min(max_lat, p.lat)),
                    std::max(min_lon, std::min(max_lon, p.lon))};
  }

  // Smallest box containing both.
  BoundingBox Union(const BoundingBox& o) const {
    return BoundingBox{std::min(min_lat, o.min_lat),
                       std::max(max_lat, o.max_lat),
                       std::min(min_lon, o.min_lon),
                       std::max(max_lon, o.max_lon)};
  }

  double LatSpan() const { return max_lat - min_lat; }
  double LonSpan() const { return max_lon - min_lon; }
};

}  // namespace tklus

#endif  // TKLUS_GEO_POINT_H_
