#!/usr/bin/env bash
# Runs the machine-readable performance baselines and leaves
# BENCH_query.json + BENCH_ingest.json + BENCH_server.json in the
# repo root.
#
# Usage:
#   scripts/bench.sh             full run (default 60k-tweet corpus)
#   scripts/bench.sh --smoke     small corpus, <2 min — the CI smoke job
#   scripts/bench.sh ARGS...     extra args forwarded to both binaries
#
# Reuses an existing build when one has the binaries; otherwise configures
# a RelWithDebInfo build into build/ first. TKLUS_BENCH_TWEETS scales the
# corpus as for every other bench binary.
set -eu

cd "$(dirname "$0")/.."

find_bin() {
  ls -t build*/bench/"$1" 2>/dev/null | head -n1 || true
}

query_bin=$(find_bin bench_query_throughput)
ingest_bin=$(find_bin bench_ingest)
server_bin=$(find_bin bench_server_loadgen)
if [ -z "$query_bin" ] || [ ! -x "$query_bin" ] ||
   [ -z "$ingest_bin" ] || [ ! -x "$ingest_bin" ] ||
   [ -z "$server_bin" ] || [ ! -x "$server_bin" ]; then
  echo "bench: building benchmark binaries"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build -j"$(nproc)" --target bench_query_throughput \
    --target bench_ingest --target bench_server_loadgen
  query_bin=build/bench/bench_query_throughput
  ingest_bin=build/bench/bench_ingest
  server_bin=build/bench/bench_server_loadgen
fi

"$query_bin" --out BENCH_query.json "$@"
"$ingest_bin" --out BENCH_ingest.json "$@"
"$server_bin" --out BENCH_server.json "$@"
