#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace tklus {
namespace {

// ------------------------------------------------------------------- tracing

TEST(TracerTest, FakeClockDurationsAreExact) {
  FakeClock clock(1000);
  Trace trace;
  Tracer tracer(&trace, &clock);
  {
    Tracer::Span root = tracer.StartSpan("query");
    clock.AdvanceNanos(10);
    {
      Tracer::Span stage = tracer.StartSpan("cover");
      clock.AdvanceNanos(25);
    }
    clock.AdvanceNanos(5);
  }
  ASSERT_EQ(trace.spans.size(), 2u);
  const TraceSpan* root = trace.Find("query");
  const TraceSpan* cover = trace.Find("cover");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(cover, nullptr);
  EXPECT_EQ(root->start_ns, 1000u);
  EXPECT_EQ(root->duration_ns, 40u);
  EXPECT_EQ(cover->start_ns, 1010u);
  EXPECT_EQ(cover->duration_ns, 25u);
}

TEST(TracerTest, NestingAttributesParents) {
  FakeClock clock;
  Trace trace;
  Tracer tracer(&trace, &clock);
  Tracer::Span root = tracer.StartSpan("query");
  {
    Tracer::Span a = tracer.StartSpan("a");
    Tracer::Span inner = tracer.StartSpan("a.inner");
  }
  Tracer::Span b = tracer.StartSpan("b");
  b.End();
  root.End();

  ASSERT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.Find("query")->parent, 0u);
  EXPECT_EQ(trace.Find("a")->parent, trace.Find("query")->id);
  EXPECT_EQ(trace.Find("a.inner")->parent, trace.Find("a")->id);
  // `b` starts after a's guards closed, so it hangs off the root again.
  EXPECT_EQ(trace.Find("b")->parent, trace.Find("query")->id);
  const auto children = trace.ChildrenOf(trace.Find("query")->id);
  ASSERT_EQ(children.size(), 2u);
}

TEST(TracerTest, CountersMergeByName) {
  FakeClock clock;
  Trace trace;
  Tracer tracer(&trace, &clock);
  Tracer::Span span = tracer.StartSpan("stage");
  span.AddCounter("db_page_reads", 3);
  span.AddCounter("db_page_reads", 4);
  span.AddCounter("other", 1);
  span.End();
  EXPECT_EQ(trace.Find("stage")->Counter("db_page_reads"), 7u);
  EXPECT_EQ(trace.Find("stage")->Counter("other"), 1u);
  EXPECT_EQ(trace.Find("stage")->Counter("absent"), 0u);
  EXPECT_EQ(trace.CounterTotal("db_page_reads"), 7u);
}

TEST(TracerTest, DisabledTracerIsInert) {
  Tracer tracer;  // no trace sink
  EXPECT_FALSE(tracer.enabled());
  Tracer::Span span = tracer.StartSpan("anything");
  span.AddCounter("x", 1);
  span.End();  // must not crash
  EXPECT_FALSE(span.active());
}

TEST(TracerTest, MovedFromGuardDoesNotDoubleEnd) {
  FakeClock clock;
  Trace trace;
  Tracer tracer(&trace, &clock);
  Tracer::Span a = tracer.StartSpan("a");
  clock.AdvanceNanos(7);
  Tracer::Span moved = std::move(a);
  a.End();  // moved-from: no-op
  moved.End();
  EXPECT_EQ(trace.Find("a")->duration_ns, 7u);
  clock.AdvanceNanos(100);
  moved.End();  // second End: no-op
  EXPECT_EQ(trace.Find("a")->duration_ns, 7u);
}

TEST(TracerTest, ToJsonEscapesNames) {
  FakeClock clock;
  Trace trace;
  Tracer tracer(&trace, &clock);
  Tracer::Span span = tracer.StartSpan("we\"ird\nname");
  span.AddCounter("c\\ount", 2);
  span.End();
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"we\\\"ird\\nname\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"c\\\\ount\": 2"), std::string::npos) << json;
}

TEST(StopwatchTest, FakeClockElapsed) {
  FakeClock clock;
  Stopwatch sw(&clock);
  clock.AdvanceMillis(250);
  EXPECT_DOUBLE_EQ(sw.ElapsedMillis(), 250.0);
  sw.Restart();
  clock.AdvanceMillis(3);
  EXPECT_DOUBLE_EQ(sw.ElapsedMillis(), 3.0);
}

// ------------------------------------------------------------------- metrics

TEST(MetricsTest, CounterAccumulatesAcrossShards) {
  Counter c(4);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
}

TEST(MetricsTest, HistogramBucketBoundariesAreLeInclusive) {
  Histogram h({1.0, 5.0, 10.0});
  h.Observe(0.5);   // le=1
  h.Observe(1.0);   // le=1 (boundary is inclusive, Prometheus `le`)
  h.Observe(1.001); // le=5
  h.Observe(5.0);   // le=5
  h.Observe(10.0);  // le=10
  h.Observe(99.0);  // +Inf
  EXPECT_EQ(h.CumulativeCount(0), 2u);   // <= 1
  EXPECT_EQ(h.CumulativeCount(1), 4u);   // <= 5
  EXPECT_EQ(h.CumulativeCount(2), 5u);   // <= 10
  EXPECT_EQ(h.CumulativeCount(3), 6u);   // +Inf
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.001 + 5.0 + 10.0 + 99.0);
}

TEST(MetricsTest, HistogramSortsAndDedupsBounds) {
  Histogram h({10.0, 1.0, 10.0, 5.0});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 10.0);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("tklus_test_total", "help");
  Counter* b = reg.GetCounter("tklus_test_total", "different help ignored");
  EXPECT_EQ(a, b);
  a->Increment(5);
  EXPECT_EQ(b->Value(), 5u);
}

TEST(MetricsTest, RegistryTypeMismatchYieldsDetachedDummy) {
  MetricsRegistry reg;
  reg.GetCounter("tklus_name", "first registration wins");
  Gauge* dummy = reg.GetGauge("tklus_name", "wrong type");
  ASSERT_NE(dummy, nullptr);
  dummy->Set(77);  // must not crash, must not surface in Expose
  const std::string text = reg.Expose();
  EXPECT_NE(text.find("# TYPE tklus_name counter"), std::string::npos);
  EXPECT_EQ(text.find("77"), std::string::npos) << text;
}

TEST(MetricsTest, ExposeFormatsFamiliesSortedAndEscaped) {
  MetricsRegistry reg;
  reg.GetCounter("tklus_b_total", "line one\nline two \\ backslash")
      ->Increment(3);
  reg.GetGauge("tklus_a_gauge", "a gauge")->Set(-4);
  Histogram* h =
      reg.GetHistogram("tklus_lat_ms", "latency", {0.5, 2.5});
  h->Observe(0.25);
  h->Observe(2.0);
  h->Observe(50.0);
  const std::string text = reg.Expose();

  // Families are name-sorted: a_gauge, b_total, lat_ms.
  const size_t pos_a = text.find("# TYPE tklus_a_gauge gauge");
  const size_t pos_b = text.find("# TYPE tklus_b_total counter");
  const size_t pos_h = text.find("# TYPE tklus_lat_ms histogram");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_h, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_h);

  // HELP escaping: newline -> \n, backslash -> \\ (Prometheus rules).
  EXPECT_NE(text.find("# HELP tklus_b_total line one\\nline two \\\\ "
                      "backslash"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tklus_a_gauge -4\n"), std::string::npos);
  EXPECT_NE(text.find("tklus_b_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("tklus_lat_ms_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tklus_lat_ms_bucket{le=\"2.5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tklus_lat_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tklus_lat_ms_count 3\n"), std::string::npos);
}

TEST(MetricsTest, GlobalRegistryCarriesEngineFamilies) {
  // The process registry exists and Expose() never throws; families from
  // instrumented subsystems appear once anything ran in this process.
  const std::string text = MetricsRegistry::Global().Expose();
  SUCCEED() << text.size();
}

// ------------------------------------------------------------ slow query log

SlowQueryRecord MakeRecord(const std::string& summary, double ms) {
  SlowQueryRecord r;
  r.summary = summary;
  r.elapsed_ms = ms;
  return r;
}

TEST(SlowQueryLogTest, ThresholdGates) {
  SlowQueryLog log({/*threshold_ms=*/100.0, /*capacity=*/4});
  EXPECT_TRUE(log.enabled());
  EXPECT_FALSE(log.ShouldRecord(99.9));
  EXPECT_TRUE(log.ShouldRecord(100.0));
  SlowQueryLog disabled({/*threshold_ms=*/0.0, /*capacity=*/4});
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.ShouldRecord(1e9));
  disabled.Record(MakeRecord("ignored", 1e9));
  EXPECT_EQ(disabled.total_recorded(), 0u);
}

TEST(SlowQueryLogTest, RingWrapsKeepingNewestOldestFirst) {
  SlowQueryLog log({/*threshold_ms=*/1.0, /*capacity=*/3});
  for (int i = 1; i <= 5; ++i) {
    log.Record(MakeRecord("q" + std::to_string(i), 10.0 * i));
  }
  EXPECT_EQ(log.total_recorded(), 5u);
  const std::vector<SlowQueryRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Oldest surviving first: q3, q4, q5 with their admission sequences.
  EXPECT_EQ(snap[0].summary, "q3");
  EXPECT_EQ(snap[0].sequence, 3u);
  EXPECT_EQ(snap[1].summary, "q4");
  EXPECT_EQ(snap[2].summary, "q5");
  EXPECT_EQ(snap[2].sequence, 5u);
}

TEST(SlowQueryLogTest, DumpJsonLinesEscapesAndOrders) {
  SlowQueryLog log({/*threshold_ms=*/1.0, /*capacity=*/8});
  log.Record(MakeRecord("plain", 12.5));
  log.Record(MakeRecord("quo\"te\nline", 13.0));
  std::ostringstream out;
  log.DumpJsonLines(out);
  const std::string text = out.str();
  // One object per line, oldest first, JSON string escaping applied.
  const size_t newline = text.find('\n');
  ASSERT_NE(newline, std::string::npos);
  EXPECT_NE(text.find("\"summary\": \"plain\""), std::string::npos);
  EXPECT_NE(text.find("\"elapsed_ms\": 12.500"), std::string::npos);
  EXPECT_NE(text.find("\"quo\\\"te\\nline\""), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(SlowQueryLogTest, CapacityZeroClampsToOne) {
  SlowQueryLog log({/*threshold_ms=*/1.0, /*capacity=*/0});
  log.Record(MakeRecord("a", 2.0));
  log.Record(MakeRecord("b", 3.0));
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].summary, "b");
}

}  // namespace
}  // namespace tklus
