#include "common/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"

namespace tklus {
namespace fileio {

namespace {

constexpr uint64_t kFooterMagic = 0x6b63685374756f46ULL;  // "FoutShck"
constexpr uint32_t kFooterVersion = 1;
constexpr size_t kFooterSize = 16;

void PutU32(char* out, uint32_t v) { std::memcpy(out, &v, 4); }
void PutU64(char* out, uint64_t v) { std::memcpy(out, &v, 8); }
uint32_t GetU32(const char* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}
uint64_t GetU64(const char* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

// Writes `frame` (payload, optionally followed by a footer the caller
// already appended) to `path + ".tmp"`, fsyncs, renames over `path`.
// Consults `faults` at kFileWrite (fail / torn write) and kFileRename.
Status WriteFrameAtomic(const std::string& path, std::string_view frame,
                        FaultInjector* faults) {
  if (faults != nullptr) {
    Status st = faults->MaybeFail(faults::kFileWrite, path);
    if (!st.ok()) return st;
  }
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  auto write_all = [fd](const char* data, size_t len) {
    while (len > 0) {
      const ssize_t n = ::write(fd, data, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      data += n;
      len -= static_cast<size_t>(n);
    }
    return true;
  };
  if (faults != nullptr) {
    const std::optional<size_t> torn =
        faults->MaybeTornWrite(faults::kFileWrite, frame.size());
    if (torn.has_value()) {
      // Persist only the prefix and "crash": the torn temp file stays on
      // disk, the destination name still points at the old content.
      write_all(frame.data(), *torn);
      ::fsync(fd);
      ::close(fd);
      return Status::IoError("injected torn write saving " + tmp);
    }
  }
  const bool written = write_all(frame.data(), frame.size());
  // fsync before rename: the new bytes must be durable before the name
  // points at them, or a crash could expose an empty/torn file.
  const bool synced = written && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    ::unlink(tmp.c_str());
    return Status::IoError("short write saving " + tmp);
  }
  if (faults != nullptr) {
    // A fault here models a crash after the durable temp write but before
    // the rename: the temp file is deliberately left behind.
    Status st = faults->MaybeFail(faults::kFileRename, path);
    if (!st.ok()) return st;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return Status::IoError("renaming " + tmp + " over " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view payload,
                       FaultInjector* faults) {
  std::string frame(payload);
  char footer[kFooterSize];
  PutU32(footer, kFooterVersion);
  PutU32(footer + 4, Crc32(payload.data(), payload.size()));
  PutU64(footer + 8, kFooterMagic);
  frame.append(footer, kFooterSize);
  return WriteFrameAtomic(path, frame, faults);
}

Status WriteFilePlain(const std::string& path, std::string_view payload,
                      FaultInjector* faults) {
  return WriteFrameAtomic(path, payload, faults);
}

Result<std::string> ReadFileRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("no such file: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IoError("cannot read " + path);
  }
  return bytes;
}

Result<std::string> ReadFileVerified(const std::string& path) {
  Result<std::string> raw = ReadFileRaw(path);
  if (!raw.ok()) return raw.status();
  std::string bytes = *std::move(raw);
  if (bytes.size() < kFooterSize) {
    return Status::Corruption("missing checksum footer in " + path);
  }
  const char* footer = bytes.data() + bytes.size() - kFooterSize;
  if (GetU64(footer + 8) != kFooterMagic) {
    return Status::Corruption("bad footer magic in " + path);
  }
  if (GetU32(footer) != kFooterVersion) {
    return Status::Corruption("unsupported footer version in " + path);
  }
  const uint32_t expected = GetU32(footer + 4);
  const size_t payload_size = bytes.size() - kFooterSize;
  if (Crc32(bytes.data(), payload_size) != expected) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  bytes.resize(payload_size);
  return bytes;
}

}  // namespace fileio
}  // namespace tklus
