#ifndef TKLUS_STORAGE_BUFFER_POOL_H_
#define TKLUS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace tklus {

// A fixed-capacity LRU buffer pool over a DiskManager. Pages are pinned
// while in use; unpinned pages are eviction candidates in LRU order.
//
// Thread safety: safe for concurrent callers. One internal latch protects
// the page table, the LRU list and the free list (and covers the disk I/O
// of misses and evictions); pin counts are per-frame atomics so lock-free
// observers (pinned_page_count) stay race-free. Page *contents* are not
// latched: a pinned frame cannot be evicted, so concurrent readers of the
// same pinned page are safe as long as nobody writes it — which the
// engine guarantees by running all mutators (inserts, header updates)
// under its exclusive writer lock. See DESIGN.md §10 for the latch order.
//
// FetchPage/NewPage/UnpinPage are the raw pin primitives; storage-layer
// code must go through the RAII PageGuard (storage/page_guard.h) instead —
// `tklus_analyze` enforces this (rule `pin-discipline`).
class BufferPool {
 public:
  // Hit/miss/eviction counters. Relaxed atomics with value-copy semantics:
  // bumped under the latch, but read by benchmarks and per-query stats
  // without it.
  struct Stats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};

    Stats() = default;
    Stats(const Stats& o)
        : hits(o.hits.load(std::memory_order_relaxed)),
          misses(o.misses.load(std::memory_order_relaxed)),
          evictions(o.evictions.load(std::memory_order_relaxed)) {}
    Stats& operator=(const Stats& o) {
      hits.store(o.hits.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      misses.store(o.misses.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      evictions.store(o.evictions.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      return *this;
    }
    double HitRate() const {
      const uint64_t h = hits.load(std::memory_order_relaxed);
      const uint64_t m = misses.load(std::memory_order_relaxed);
      const uint64_t total = h + m;
      return total == 0 ? 0.0 : static_cast<double>(h) / total;
    }
  };

  BufferPool(DiskManager* disk, size_t pool_size);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins and returns the page, reading it from disk on a miss. Returns an
  // error if every frame is pinned.
  Result<Page*> FetchPage(PageId page_id) TKLUS_EXCLUDES(latch_);

  // Allocates a new page on disk and pins an empty frame for it.
  Result<Page*> NewPage() TKLUS_EXCLUDES(latch_);

  // Unpins; `dirty` marks the frame for write-back on eviction/flush.
  Status UnpinPage(PageId page_id, bool dirty) TKLUS_EXCLUDES(latch_);

  Status FlushPage(PageId page_id) TKLUS_EXCLUDES(latch_);
  Status FlushAll() TKLUS_EXCLUDES(latch_);

  size_t pool_size() const { return frames_.size(); }
  // Frames currently pinned — must return to 0 between operations; a
  // non-zero steady-state value is a pin leak. Tests assert this drops
  // back to zero at teardown. Latch-free: reads the atomic pin counts.
  size_t pinned_page_count() const {
    size_t pinned = 0;
    for (const auto& frame : frames_) {
      if (frame->pin_count() > 0) ++pinned;
    }
    return pinned;
  }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }
  DiskManager* disk() { return disk_; }

 private:
  // Returns a free frame, evicting the LRU unpinned page if needed.
  Result<size_t> GetVictimFrame() TKLUS_REQUIRES(latch_);
  void Touch(size_t frame) TKLUS_REQUIRES(latch_);

  DiskManager* disk_;
  // frames_ itself (the vector of stable unique_ptrs) is immutable after
  // construction; frame *metadata* is guarded by latch_ per the Page
  // contract above.
  std::vector<std::unique_ptr<Page>> frames_;
  mutable Mutex latch_;
  std::unordered_map<PageId, size_t> page_table_
      TKLUS_GUARDED_BY(latch_);  // page id -> frame
  std::list<size_t> lru_ TKLUS_GUARDED_BY(latch_);  // front = least recent
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_
      TKLUS_GUARDED_BY(latch_);
  std::vector<size_t> free_frames_ TKLUS_GUARDED_BY(latch_);
  Stats stats_;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_BUFFER_POOL_H_
