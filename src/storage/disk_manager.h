#ifndef TKLUS_STORAGE_DISK_MANAGER_H_
#define TKLUS_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace tklus {

// Reads and writes fixed-size pages of a single database file and counts
// physical I/Os. All experiments that report "I/Os" (thread construction,
// buffer-pool ablations) read these counters.
class DiskManager {
 public:
  struct Stats {
    uint64_t page_reads = 0;
    uint64_t page_writes = 0;
  };

  // Creates (truncating if `truncate`) or opens the file at `path`.
  static Result<DiskManager> Open(const std::string& path,
                                  bool truncate = true);

  DiskManager(DiskManager&&) = default;
  DiskManager& operator=(DiskManager&&) = default;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  ~DiskManager();

  // Allocates a fresh page id at the end of the file.
  PageId AllocatePage();

  Status ReadPage(PageId page_id, char* out);
  Status WritePage(PageId page_id, const char* data);

  PageId num_pages() const { return next_page_id_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }
  const std::string& path() const { return path_; }

 private:
  DiskManager() = default;

  std::string path_;
  std::fstream file_;
  PageId next_page_id_ = 0;
  Stats stats_;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_DISK_MANAGER_H_
