// Unit tests for the tklus_analyze internals grown in DESIGN.md §13-14:
// the splice/raw-string-aware lexer, the flow-aware lock model, the
// manifest loaders, the cross-TU program model (call resolution, summary
// fixpoint, entry-held propagation, hot-path reachability), the lock and
// interprocedural rules, NOLINT suppression handling, and the JSON/SARIF
// emitters. The end-to-end gates (clean tree, fixture selftest) live in
// ctest's analyze_clean_tree / analyze_selftest; these tests pin the
// pieces those gates are built from.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyzer.h"
#include "analyze/callgraph.h"
#include "analyze/output.h"
#include "analyze/rules.h"
#include "analyze/source_model.h"
#include "analyze/summaries.h"

namespace tklus::analyze {
namespace {

namespace fs = std::filesystem;

bool HasIdent(const SourceFile& f, const std::string& text) {
  return std::any_of(f.tokens.begin(), f.tokens.end(), [&](const Token& t) {
    return t.kind == Token::Kind::kIdent && t.text == text;
  });
}

const Token* FindIdent(const SourceFile& f, const std::string& text) {
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kIdent && t.text == text) return &t;
  }
  return nullptr;
}

// ------------------------------------------------------------------- lexer

TEST(LexerRawString, CollapsesToSingleToken) {
  const SourceFile f = LexFile(
      "src/core/x.cc",
      "const char* s = R\"(std::mutex \"quoted\" // not a comment)\";\n"
      "int after = 1;\n");
  // Nothing inside the raw string may leak out as a token...
  EXPECT_FALSE(HasIdent(f, "mutex"));
  EXPECT_FALSE(HasIdent(f, "quoted"));
  // ...and lexing must resynchronize cleanly after it.
  const Token* after = FindIdent(f, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 2);
}

TEST(LexerRawString, EncodingPrefixes) {
  for (const char* prefix : {"u8", "u", "U", "L"}) {
    const std::string code = std::string("auto s = ") + prefix +
                             "R\"(steady_clock)\";\nint tail = 0;\n";
    const SourceFile f = LexFile("src/core/x.cc", code);
    EXPECT_FALSE(HasIdent(f, "steady_clock")) << "prefix " << prefix;
    EXPECT_TRUE(HasIdent(f, "tail")) << "prefix " << prefix;
  }
}

TEST(LexerRawString, DCharDelimiters) {
  // The plain )" inside must NOT close an R"xy(...)xy" literal.
  const SourceFile f = LexFile(
      "src/core/x.cc",
      "auto s = R\"xy(contains )\" inside)xy\";\nint tail = 0;\n");
  EXPECT_FALSE(HasIdent(f, "contains"));
  EXPECT_FALSE(HasIdent(f, "inside"));
  EXPECT_TRUE(HasIdent(f, "tail"));
}

TEST(LexerRawString, UpperRSuffixIdentIsNotAPrefix) {
  // An identifier merely *ending* in R (not a literal prefix) followed
  // by a string is an ordinary ident + string pair.
  const SourceFile f =
      LexFile("src/core/x.cc", "auto x = MACRO_R\"(text)\";\n");
  EXPECT_TRUE(HasIdent(f, "MACRO_R"));
}

TEST(LexerSplice, JoinsIdentifierAcrossContinuation) {
  const SourceFile f = LexFile("src/core/x.cc", "int ab\\\ncd = 1;\n");
  EXPECT_TRUE(HasIdent(f, "abcd"));
  EXPECT_FALSE(HasIdent(f, "ab"));
  EXPECT_FALSE(HasIdent(f, "cd"));
}

TEST(LexerSplice, LineCommentContinuationSwallowsNextLine) {
  // Phase-2 splicing makes the second line part of the comment — exactly
  // what the preprocessor does; the old lexer tokenized `hidden`.
  const SourceFile f = LexFile("src/core/x.cc",
                               "// comment \\\nint hidden = 1;\n"
                               "int visible = 2;\n");
  EXPECT_FALSE(HasIdent(f, "hidden"));
  const Token* visible = FindIdent(f, "visible");
  ASSERT_NE(visible, nullptr);
  EXPECT_EQ(visible->line, 3);
}

TEST(LexerSplice, LineNumbersSurviveSplices) {
  const SourceFile f =
      LexFile("src/core/x.cc", "int a;\nint b\\\n2;\nint c;\n");
  const Token* a = FindIdent(f, "a");
  const Token* b2 = FindIdent(f, "b2");
  const Token* c = FindIdent(f, "c");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b2, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(a->line, 1);
  EXPECT_EQ(b2->line, 2);
  EXPECT_EQ(c->line, 4);
}

// -------------------------------------------------------------- lock model

SourceFile LexWithModel(const std::string& path, const std::string& code) {
  SourceFile f = LexFile(path, code);
  f.functions = BuildLockModel(f);
  return f;
}

TEST(LockModel, TracksNestedAcquisitionsAndCalls) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "namespace tklus {\n"
                                    "class Engine {\n"
                                    " public:\n"
                                    "  void Save() {\n"
                                    "    MutexLock a(&append_mu_);\n"
                                    "    MutexLock m(&merge_mu_);\n"
                                    "    Flush();\n"
                                    "  }\n"
                                    "};\n"
                                    "}  // namespace tklus\n");
  ASSERT_EQ(f.functions.size(), 1u);
  const FunctionLockModel& fn = f.functions[0];
  EXPECT_EQ(fn.name, "Save");
  ASSERT_EQ(fn.acquisitions.size(), 2u);
  EXPECT_EQ(fn.acquisitions[0].guard.member, "append_mu_");
  EXPECT_TRUE(fn.acquisitions[0].held.empty());
  EXPECT_EQ(fn.acquisitions[1].guard.member, "merge_mu_");
  ASSERT_EQ(fn.acquisitions[1].held.size(), 1u);
  EXPECT_EQ(fn.acquisitions[1].held[0].member, "append_mu_");
  ASSERT_EQ(fn.calls.size(), 1u);
  EXPECT_EQ(fn.calls[0].callee, "Flush");
  EXPECT_EQ(fn.calls[0].held.size(), 2u);
}

TEST(LockModel, ScopedReleasePopsGuard) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Fold() {\n"
                                    "  MutexLock m(&merge_mu_);\n"
                                    "  {\n"
                                    "    ReaderMutexLock r(&mu_);\n"
                                    "  }\n"
                                    "  WriterMutexLock w(&mu_);\n"
                                    "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  const FunctionLockModel& fn = f.functions[0];
  ASSERT_EQ(fn.acquisitions.size(), 3u);
  EXPECT_FALSE(fn.acquisitions[1].guard.exclusive);  // the reader
  // The writer at the end sees only merge_mu_: the reader guard died
  // with its block.
  const GuardAcquire& writer = fn.acquisitions[2];
  EXPECT_EQ(writer.guard.member, "mu_");
  ASSERT_EQ(writer.held.size(), 1u);
  EXPECT_EQ(writer.held[0].member, "merge_mu_");
}

TEST(LockModel, ResolvesMemberThroughArrow) {
  const SourceFile f = LexWithModel(
      "src/core/engine.cc",
      "void Open(Engine* engine) {\n"
      "  WriterMutexLock lock(&engine->mu_);\n"
      "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  ASSERT_EQ(f.functions[0].acquisitions.size(), 1u);
  EXPECT_EQ(f.functions[0].acquisitions[0].guard.member, "mu_");
}

TEST(LockModel, QualifiedOutOfClassName) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Engine::Save() {\n"
                                    "  MutexLock a(&append_mu_);\n"
                                    "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  EXPECT_EQ(f.functions[0].name, "Engine::Save");
}

// ----------------------------------------------------------- conf loading

std::string WriteTempConf(const std::string& name, const std::string& body) {
  const fs::path path = fs::path(testing::TempDir()) / name;
  std::ofstream out(path);
  out << body;
  out.close();
  return path.string();
}

TEST(LockOrderConf, TransitiveClosureAndIoLists) {
  const std::string path = WriteTempConf("ok.conf",
                                         "# comment\n"
                                         "lock a core/engine.cc\n"
                                         "lock b\n"
                                         "lock c\n"
                                         "order a b c\n"
                                         "io-lock c\n"
                                         "io-symbol fsync Append\n");
  Result<LockOrderConfig> cfg = LoadLockOrderConfig(path);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_TRUE(cfg->CanPrecede("a", "b"));
  EXPECT_TRUE(cfg->CanPrecede("a", "c"));  // transitive
  EXPECT_TRUE(cfg->CanPrecede("b", "c"));
  EXPECT_FALSE(cfg->CanPrecede("c", "a"));
  EXPECT_FALSE(cfg->CanPrecede("b", "a"));
  EXPECT_TRUE(cfg->IsDeclared("a", "src/core/engine.cc"));
  EXPECT_FALSE(cfg->IsDeclared("a", "src/index/hybrid_index.cc"));
  EXPECT_TRUE(cfg->IsDeclared("b", "src/index/hybrid_index.cc"));
  EXPECT_EQ(cfg->io_locks.count("c"), 1u);
  EXPECT_EQ(cfg->io_symbols.count("fsync"), 1u);
  EXPECT_EQ(cfg->io_symbols.count("Append"), 1u);
}

TEST(LockOrderConf, RejectsCycle) {
  const std::string path = WriteTempConf("cycle.conf",
                                         "lock a\nlock b\n"
                                         "order a b\norder b a\n");
  Result<LockOrderConfig> cfg = LoadLockOrderConfig(path);
  ASSERT_FALSE(cfg.ok());
  EXPECT_NE(cfg.status().ToString().find("cycle"), std::string::npos);
}

TEST(LockOrderConf, RejectsUndeclaredOrderName) {
  const std::string path =
      WriteTempConf("undeclared.conf", "lock a\norder a ghost\n");
  Result<LockOrderConfig> cfg = LoadLockOrderConfig(path);
  ASSERT_FALSE(cfg.ok());
  EXPECT_NE(cfg.status().ToString().find("undeclared"), std::string::npos);
}

TEST(LockOrderConf, RejectsDuplicateLock) {
  const std::string path =
      WriteTempConf("dup.conf", "lock a\nlock a scope.cc\n");
  ASSERT_FALSE(LoadLockOrderConfig(path).ok());
}

// ------------------------------------------------------------------- rules

std::vector<Diagnostic> RunRule(const std::string& rule_name,
                                const SourceFile& file,
                                const AnalyzerContext& ctx) {
  std::vector<Diagnostic> out;
  for (const auto& rule : BuildRuleSet()) {
    if (rule->name() == rule_name) rule->Check(file, ctx, &out);
  }
  return out;
}

AnalyzerContext EngineLockContext() {
  AnalyzerContext ctx;
  ctx.lockorder.loaded = true;
  ctx.lockorder.locks = {{"append_mu_", ""}, {"merge_mu_", ""}, {"mu_", ""}};
  ctx.lockorder.can_precede["append_mu_"] = {"merge_mu_", "mu_"};
  ctx.lockorder.can_precede["merge_mu_"] = {"mu_"};
  ctx.lockorder.io_locks = {"mu_"};
  ctx.lockorder.io_symbols = {"fsync", "Append"};
  return ctx;
}

TEST(LockOrderRule, FlagsInversion) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Bad() {\n"
                                    "  MutexLock m(&merge_mu_);\n"
                                    "  MutexLock a(&append_mu_);\n"
                                    "}\n");
  const std::vector<Diagnostic> diags =
      RunRule("lock-order", f, EngineLockContext());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("inversion"), std::string::npos);
}

TEST(LockOrderRule, AcceptsDeclaredChain) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Good() {\n"
                                    "  MutexLock a(&append_mu_);\n"
                                    "  MutexLock m(&merge_mu_);\n"
                                    "  WriterMutexLock w(&mu_);\n"
                                    "}\n");
  EXPECT_TRUE(RunRule("lock-order", f, EngineLockContext()).empty());
}

TEST(LockOrderRule, FlagsRecursiveSharedAcquisition) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Bad() {\n"
                                    "  ReaderMutexLock r1(&mu_);\n"
                                    "  ReaderMutexLock r2(&mu_);\n"
                                    "}\n");
  const std::vector<Diagnostic> diags =
      RunRule("lock-order", f, EngineLockContext());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("recursive"), std::string::npos);
}

TEST(LockOrderRule, MissingManifestFlagsNesting) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Nest() {\n"
                                    "  MutexLock a(&x_mu_);\n"
                                    "  MutexLock b(&y_mu_);\n"
                                    "}\n");
  AnalyzerContext ctx;  // no lockorder.conf
  const std::vector<Diagnostic> diags = RunRule("lock-order", f, ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("lockorder.conf"), std::string::npos);
}

TEST(IoUnderLockRule, FlagsBlockingCallUnderIoLock) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Bad() {\n"
                                    "  WriterMutexLock w(&mu_);\n"
                                    "  fsync(fd);\n"
                                    "}\n");
  const std::vector<Diagnostic> diags =
      RunRule("io-under-lock", f, EngineLockContext());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("fsync"), std::string::npos);
}

TEST(IoUnderLockRule, AllowsIoUnderNonIoLock) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Good() {\n"
                                    "  MutexLock a(&append_mu_);\n"
                                    "  wal_->Append(rec);\n"
                                    "}\n");
  EXPECT_TRUE(RunRule("io-under-lock", f, EngineLockContext()).empty());
}

// ------------------------------------------------------------------ output

TEST(Output, JsonEscapesSpecials) {
  const std::vector<Diagnostic> diags = {
      {"rule-x", "src/a.cc", 3, "say \"hi\"\nback\\slash"}};
  const std::string json = DiagnosticsToJson(diags);
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
}

TEST(Output, SarifCarriesCatalogAndResults) {
  const std::vector<RuleInfo> rules = {{"lock-order", "order rule"},
                                       {"io-under-lock", "io rule"}};
  const std::vector<Diagnostic> diags = {
      {"lock-order", "src/core/engine.cc", 12, "inversion"}};
  const std::string sarif = DiagnosticsToSarif(diags, rules);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"tklus_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"io-under-lock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lock-order\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 0"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("src/core/engine.cc"), std::string::npos);
}

// --------------------------------------------------------- lexer regressions

TEST(LexerNumber, DigitSeparatorsStayOneToken) {
  const SourceFile f =
      LexFile("src/core/x.cc", "int n = 1'000'000;\nint tail = 0;\n");
  bool found = false;
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kNumber && t.text == "1'000'000") found = true;
    // The separator must never be mis-lexed as a char literal opening.
    EXPECT_NE(t.kind, Token::Kind::kChar);
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(HasIdent(f, "tail"));
}

TEST(LexerNumber, SeparatorDoesNotSwallowRealCharLiteral) {
  // `f(1,'a')`: the 1 and the 'a' are distinct tokens — the quote is not
  // flanked by digit characters on both sides, so it is a char literal.
  const SourceFile f = LexFile("src/core/x.cc", "int y = f(1,'a');\n");
  bool has_char = false;
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kChar) has_char = true;
  }
  EXPECT_TRUE(has_char);
}

TEST(LexerNumber, ExponentSignsStayAttached) {
  const SourceFile f = LexFile(
      "src/core/x.cc", "double a = 1e+5;\ndouble b = 0x1.8p-3;\n");
  bool dec = false, hex = false;
  for (const Token& t : f.tokens) {
    if (t.kind != Token::Kind::kNumber) continue;
    if (t.text == "1e+5") dec = true;
    if (t.text == "0x1.8p-3") hex = true;
  }
  EXPECT_TRUE(dec);
  EXPECT_TRUE(hex);
}

TEST(LexerUdl, OperatorDefinitionNamesTheSuffix) {
  SourceFile f = LexFile(
      "src/core/units.cc",
      "constexpr unsigned long long operator\"\" _kb(unsigned long long v) "
      "{\n  return v * 1024;\n}\n");
  BuildFileModel(&f);
  ASSERT_EQ(f.functions.size(), 1u);
  EXPECT_EQ(f.functions[0].name, "operator\"\"_kb");
  // The definition header must not be mistaken for a call to `_kb`.
  for (const FunctionLockModel& fn : f.functions) {
    for (const CallSite& cs : fn.call_sites) {
      EXPECT_NE(cs.callee, "_kb");
    }
  }
}

TEST(LexerSuppression, CapturesEveryShape) {
  const SourceFile f = LexFile(
      "src/core/x.cc",
      "int a = 1;  // NOLINT\n"
      "int b = 2;  // NOLINT(tklus-naked-mutex)\n"
      "int c = 3;  // NOLINT(tklus-lock-order): reviewed in PR 7\n");
  ASSERT_EQ(f.suppressions.size(), 3u);
  EXPECT_EQ(f.suppressions[0].line, 1);
  EXPECT_FALSE(f.suppressions[0].has_rule);
  EXPECT_EQ(f.suppressions[1].line, 2);
  EXPECT_TRUE(f.suppressions[1].has_rule);
  EXPECT_EQ(f.suppressions[1].rule, "naked-mutex");
  EXPECT_FALSE(f.suppressions[1].has_reason);
  EXPECT_EQ(f.suppressions[2].line, 3);
  EXPECT_TRUE(f.suppressions[2].has_rule);
  EXPECT_EQ(f.suppressions[2].rule, "lock-order");
  EXPECT_TRUE(f.suppressions[2].has_reason);
}

// ----------------------------------------------------- file model extraction

SourceFile ModelFile(const std::string& path, const std::string& code) {
  SourceFile f = LexFile(path, code);
  BuildFileModel(&f);
  return f;
}

TEST(FileModel, CallSiteFormsAndLambdaFlag) {
  const SourceFile f = ModelFile(
      "src/core/engine.cc",
      "class Engine {\n"
      " public:\n"
      "  void Run() {\n"
      "    Helper();\n"
      "    this->Tick();\n"
      "    other_->Poke();\n"
      "    Util::Mix();\n"
      "    worker_ = std::thread([this] { Deferred(); });\n"
      "  }\n"
      "};\n");
  ASSERT_EQ(f.functions.size(), 1u);
  const FunctionLockModel& fn = f.functions[0];
  auto find = [&](const std::string& callee) -> const CallSite* {
    for (const CallSite& cs : fn.call_sites) {
      if (cs.callee == callee) return &cs;
    }
    return nullptr;
  };
  const CallSite* helper = find("Helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->form, CallSite::Form::kUnqualified);
  EXPECT_FALSE(helper->in_lambda);
  const CallSite* tick = find("Tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->form, CallSite::Form::kThis);
  const CallSite* poke = find("Poke");
  ASSERT_NE(poke, nullptr);
  EXPECT_EQ(poke->form, CallSite::Form::kMember);
  const CallSite* mix = find("Mix");
  ASSERT_NE(mix, nullptr);
  EXPECT_EQ(mix->form, CallSite::Form::kQualified);
  EXPECT_EQ(mix->qualifier, "Util");
  const CallSite* deferred = find("Deferred");
  ASSERT_NE(deferred, nullptr);
  EXPECT_TRUE(deferred->in_lambda);
}

TEST(FileModel, EffectSitesAndGuardedAccesses) {
  const SourceFile f = ModelFile(
      "src/core/engine.cc",
      "class Engine {\n"
      " public:\n"
      "  void Touch() {\n"
      "    auto p = std::make_unique<int>(7);\n"
      "    std::string label = std::to_string(3);\n"
      "    MutexLock lock(&mu_);\n"
      "    count_ = 1;\n"
      "  }\n"
      "};\n");
  ASSERT_EQ(f.functions.size(), 1u);
  const FunctionLockModel& fn = f.functions[0];
  bool alloc = false, str = false;
  for (const EffectSite& e : fn.effects) {
    if (e.kind == EffectSite::Kind::kAlloc && e.what == "make_unique") {
      alloc = true;
    }
    if (e.kind == EffectSite::Kind::kString) str = true;
  }
  EXPECT_TRUE(alloc);
  EXPECT_TRUE(str);
  const MemberAccess* count = nullptr;
  for (const MemberAccess& a : fn.accesses) {
    if (a.member == "count_") count = &a;
  }
  ASSERT_NE(count, nullptr);
  ASSERT_EQ(count->held.size(), 1u);
  EXPECT_EQ(count->held[0].member, "mu_");
}

TEST(FileModel, CollectsFieldAndMethodAnnotations) {
  const SourceFile f = ModelFile(
      "src/core/widget.h",
      "class Widget {\n"
      " public:\n"
      "  int GetLocked() const TKLUS_REQUIRES(mu_);\n"
      "  void Detach() TKLUS_NO_THREAD_SAFETY_ANALYSIS;\n"
      "\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int value_ TKLUS_GUARDED_BY(mu_) = 0;\n"
      "};\n");
  ASSERT_EQ(f.guarded_fields.size(), 1u);
  EXPECT_EQ(f.guarded_fields[0].class_name, "Widget");
  EXPECT_EQ(f.guarded_fields[0].field, "value_");
  EXPECT_EQ(f.guarded_fields[0].mutex, "mu_");
  const MethodAnnotation* get = nullptr;
  const MethodAnnotation* detach = nullptr;
  for (const MethodAnnotation& m : f.method_annotations) {
    if (m.method == "GetLocked") get = &m;
    if (m.method == "Detach") detach = &m;
  }
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->class_name, "Widget");
  EXPECT_EQ(get->requires_locks.count("mu_"), 1u);
  ASSERT_NE(detach, nullptr);
  EXPECT_TRUE(detach->no_thread_safety);
}

// ------------------------------------------------------------- program model

// Lexes+models each (path, code) pair and builds the cross-TU program
// model with summaries, the way RunAnalysis's sequential phase does.
struct Program {
  std::vector<SourceFile> files;
  ProgramModel model;
};

Program BuildProgram(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Program p;
  for (const auto& [path, code] : sources) {
    p.files.push_back(ModelFile(path, code));
  }
  p.model.Build(p.files);
  ComputeSummaries(&p.model);
  return p;
}

const ProgramFunction* FindFn(const ProgramModel& m,
                              const std::string& qualified) {
  const auto it = m.by_qualified.find(qualified);
  if (it == m.by_qualified.end() || it->second.size() != 1) return nullptr;
  return &m.functions[it->second[0]];
}

TEST(ProgramModel, SummariesPropagateAcrossFiles) {
  const Program p = BuildProgram(
      {{"src/core/a.cc",
        "void Outer() {\n"
        "  MutexLock a(&a_mu_);\n"
        "  Inner();\n"
        "}\n"},
       {"src/core/b.cc",
        "void Inner() {\n"
        "  MutexLock b(&b_mu_);\n"
        "}\n"}});
  const ProgramFunction* outer = FindFn(p.model, "Outer");
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(outer->callees.size(), 1u);
  EXPECT_EQ(p.model.functions[outer->callees[0].callee].qualified, "Inner");
  ASSERT_EQ(outer->callees[0].held.size(), 1u);
  EXPECT_EQ(outer->callees[0].held[0], "a_mu_");
  // Outer's summary holds its own acquire plus Inner's, with a witness
  // chain that starts at Outer and ends at the acquiring function.
  bool own = false;
  const TransitiveAcquire* via_inner = nullptr;
  for (const TransitiveAcquire& acq : outer->summary.acquires) {
    if (acq.lock == "a_mu_") own = true;
    if (acq.lock == "b_mu_") via_inner = &acq;
  }
  EXPECT_TRUE(own);
  ASSERT_NE(via_inner, nullptr);
  EXPECT_EQ(via_inner->site_path, "src/core/b.cc");
  ASSERT_GE(via_inner->path.size(), 2u);
  EXPECT_EQ(via_inner->path.front(), "Outer");
  EXPECT_EQ(via_inner->path.back(), "Inner");
}

TEST(ProgramModel, RecursiveCycleReachesFixpoint) {
  const Program p = BuildProgram(
      {{"src/core/a.cc",
        "void Ping() {\n  Pong();\n}\n"
        "void Pong() {\n"
        "  MutexLock m(&cycle_mu_);\n"
        "  Ping();\n"
        "}\n"}});
  const ProgramFunction* ping = FindFn(p.model, "Ping");
  const ProgramFunction* pong = FindFn(p.model, "Pong");
  ASSERT_NE(ping, nullptr);
  ASSERT_NE(pong, nullptr);
  // Both members of the cycle end up knowing about the acquire; the
  // fixpoint must terminate despite the loop.
  auto has = [](const ProgramFunction* fn, const std::string& lock) {
    for (const TransitiveAcquire& acq : fn->summary.acquires) {
      if (acq.lock == lock) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(ping, "cycle_mu_"));
  EXPECT_TRUE(has(pong, "cycle_mu_"));
}

TEST(ProgramModel, LambdaCallSitesProduceNoEdges) {
  // A thread-entry call inside a lambda must not become a synchronous
  // call edge: the spawner never executes MergeLoop's acquisitions.
  const Program p = BuildProgram(
      {{"src/core/a.cc",
        "class Engine {\n"
        " public:\n"
        "  void Start() {\n"
        "    MutexLock m(&mu_);\n"
        "    worker_ = std::thread([this] { MergeLoop(); });\n"
        "  }\n"
        "  void MergeLoop() {\n"
        "    MutexLock m(&mu_);\n"
        "  }\n"
        "};\n"}});
  const ProgramFunction* start = FindFn(p.model, "Engine::Start");
  ASSERT_NE(start, nullptr);
  EXPECT_TRUE(start->callees.empty());
  for (const TransitiveAcquire& acq : start->summary.acquires) {
    EXPECT_EQ(acq.site_line, 4) << "summary leaked MergeLoop's acquire";
  }
}

TEST(ProgramModel, EntryHeldPropagatesFromCallers) {
  const Program p = BuildProgram(
      {{"src/core/widget.h",
        "class Widget {\n"
        " public:\n"
        "  int Get() {\n"
        "    MutexLock lock(&mu_);\n"
        "    return Helper();\n"
        "  }\n"
        "  int Put() {\n"
        "    MutexLock lock(&mu_);\n"
        "    return Helper();\n"
        "  }\n"
        " private:\n"
        "  int Helper() { return 1; }\n"
        "  Mutex mu_;\n"
        "};\n"}});
  const ProgramFunction* helper = FindFn(p.model, "Widget::Helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_FALSE(helper->entry_held_universal);
  EXPECT_EQ(helper->entry_held.count("mu_"), 1u)
      << "every same-class caller holds mu_ at the call site";
  // The public entry points themselves have no same-class callers, so
  // nothing is known about their entry state.
  const ProgramFunction* get = FindFn(p.model, "Widget::Get");
  ASSERT_NE(get, nullptr);
  EXPECT_TRUE(get->entry_held.empty());
}

TEST(ProgramModel, MemberCallsResolveOnlyWhenUnique) {
  // Two functions named Refresh: a receiver-qualified call must not
  // guess between them, so no edge is created.
  const Program p = BuildProgram(
      {{"src/core/a.cc",
        "class A { public: void Refresh() { MutexLock m(&a_mu_); } };\n"},
       {"src/core/b.cc",
        "class B { public: void Refresh() { MutexLock m(&b_mu_); } };\n"},
       {"src/core/c.cc",
        "void Drive(A* a) {\n  a->Refresh();\n}\n"}});
  const ProgramFunction* drive = FindFn(p.model, "Drive");
  ASSERT_NE(drive, nullptr);
  EXPECT_TRUE(drive->callees.empty());
}

// -------------------------------------------------- interprocedural rules

AnalyzerContext IpaContext(const Program& p) {
  AnalyzerContext ctx = EngineLockContext();
  ctx.program = &p.model;
  return ctx;
}

TEST(LockOrderIpaRule, FlagsCrossFunctionInversion) {
  const Program p = BuildProgram(
      {{"src/core/a.cc",
        "void Outer() {\n"
        "  MutexLock m(&merge_mu_);\n"
        "  Inner();\n"
        "}\n"},
       {"src/core/b.cc",
        "void Inner() {\n"
        "  MutexLock a(&append_mu_);\n"
        "}\n"}});
  const std::vector<Diagnostic> diags =
      RunRule("lock-order-ipa", p.files[0], IpaContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);  // the call site
  EXPECT_NE(diags[0].message.find("interprocedural lock-order inversion"),
            std::string::npos);
  EXPECT_NE(diags[0].message.find("src/core/b.cc:2"), std::string::npos);
  EXPECT_NE(diags[0].message.find("via"), std::string::npos);
  // The callee's own file is locally clean — nothing to report there.
  EXPECT_TRUE(RunRule("lock-order-ipa", p.files[1], IpaContext(p)).empty());
}

TEST(LockOrderIpaRule, FlagsRecursiveAcquisitionThroughCalls) {
  const Program p = BuildProgram(
      {{"src/core/a.cc",
        "void Outer() {\n"
        "  WriterMutexLock w(&mu_);\n"
        "  Inner();\n"
        "}\n"
        "void Inner() {\n"
        "  ReaderMutexLock r(&mu_);\n"
        "}\n"}});
  const std::vector<Diagnostic> diags =
      RunRule("lock-order-ipa", p.files[0], IpaContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("recursive acquisition through calls"),
            std::string::npos);
}

TEST(LockOrderIpaRule, AcceptsDeclaredChainAcrossCalls) {
  const Program p = BuildProgram(
      {{"src/core/a.cc",
        "void Outer() {\n"
        "  MutexLock a(&append_mu_);\n"
        "  Inner();\n"
        "}\n"},
       {"src/core/b.cc",
        "void Inner() {\n"
        "  MutexLock m(&merge_mu_);\n"
        "}\n"}});
  EXPECT_TRUE(RunRule("lock-order-ipa", p.files[0], IpaContext(p)).empty());
}

TEST(GuardDisciplineRule, FlagsUnguardedAccess) {
  const Program p = BuildProgram(
      {{"src/core/widget.h",
        "class Widget {\n"
        " public:\n"
        "  int Get() const { return value_; }\n"
        " private:\n"
        "  Mutex mu_;\n"
        "  int value_ TKLUS_GUARDED_BY(mu_) = 0;\n"
        "};\n"}});
  AnalyzerContext ctx;
  ctx.program = &p.model;
  const std::vector<Diagnostic> diags =
      RunRule("guard-discipline", p.files[0], ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("TKLUS_GUARDED_BY(mu_)"),
            std::string::npos);
}

TEST(GuardDisciplineRule, SanctionedAccessPatternsStayQuiet) {
  // Direct guard, TKLUS_REQUIRES, and entry-held propagation — the same
  // three shapes the pass fixture pins, exercised as a unit test.
  const Program p = BuildProgram(
      {{"src/core/widget.h",
        "class Widget {\n"
        " public:\n"
        "  int Get() {\n"
        "    MutexLock lock(&mu_);\n"
        "    return Helper();\n"
        "  }\n"
        "  int GetLocked() TKLUS_REQUIRES(mu_) { return value_; }\n"
        " private:\n"
        "  int Helper() { return value_ + 1; }\n"
        "  Mutex mu_;\n"
        "  int value_ TKLUS_GUARDED_BY(mu_) = 0;\n"
        "};\n"}});
  AnalyzerContext ctx;
  ctx.program = &p.model;
  EXPECT_TRUE(RunRule("guard-discipline", p.files[0], ctx).empty());
}

TEST(HotPathPurityRule, FlagsReachableImpurityWithWitness) {
  Program p = BuildProgram(
      {{"src/core/score.cc",
        "double Leaf(int n) {\n"
        "  std::string label = std::to_string(n);\n"
        "  ReadBlock(n);\n"
        "  return 1.0;\n"
        "}\n"
        "class Engine {\n"
        " public:\n"
        "  double Score(int n) { return Leaf(n); }\n"
        "};\n"}});
  HotPathConfig cfg;
  cfg.loaded = true;
  cfg.roots = {"Engine::Score"};
  cfg.banned = {"ReadBlock"};
  ComputeHotPaths(cfg, &p.model);
  AnalyzerContext ctx;
  ctx.program = &p.model;
  ctx.hotpath = cfg;
  const std::vector<Diagnostic> diags =
      RunRule("hotpath-purity", p.files[0], ctx);
  // std::string construction + to_string + the banned ReadBlock call.
  ASSERT_GE(diags.size(), 2u);
  bool str = false, banned = false;
  for (const Diagnostic& d : diags) {
    if (d.message.find("string construction") != std::string::npos) {
      str = true;
    }
    if (d.message.find("blocking call 'ReadBlock'") != std::string::npos) {
      banned = true;
    }
    EXPECT_NE(d.message.find("Engine::Score -> Leaf"), std::string::npos);
  }
  EXPECT_TRUE(str);
  EXPECT_TRUE(banned);
}

TEST(HotPathPurityRule, AllowListSkipsAuditedLeaf) {
  Program p = BuildProgram(
      {{"src/core/score.cc",
        "double Leaf(int n) {\n"
        "  std::string label = std::to_string(n);\n"
        "  return 1.0;\n"
        "}\n"
        "class Engine {\n"
        " public:\n"
        "  double Score(int n) { return Leaf(n); }\n"
        "};\n"}});
  HotPathConfig cfg;
  cfg.loaded = true;
  cfg.roots = {"Engine::Score"};
  cfg.allowed = {"Leaf"};
  ComputeHotPaths(cfg, &p.model);
  AnalyzerContext ctx;
  ctx.program = &p.model;
  ctx.hotpath = cfg;
  EXPECT_TRUE(RunRule("hotpath-purity", p.files[0], ctx).empty());
}

TEST(SuppressionRule, FlagsEveryMalformedShape) {
  const SourceFile f = LexFile(
      "src/core/x.cc",
      "int a = 1;  // NOLINT\n"
      "int b = 2;  // NOLINT(tklus-naked-mutex)\n"
      "int c = 3;  // NOLINT(tklus-no-such-rule): wrong name\n");
  AnalyzerContext ctx;
  ctx.rule_names = {"naked-mutex", "lock-order"};
  const std::vector<Diagnostic> diags = RunRule("suppression", f, ctx);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_NE(diags[0].message.find("bare NOLINT"), std::string::npos);
  EXPECT_NE(diags[1].message.find("no reason"), std::string::npos);
  EXPECT_NE(diags[2].message.find("unknown rule"), std::string::npos);
}

// ------------------------------------------------------------ conf + stats

TEST(HotPathConf, LoadsRootsBansAndAllows) {
  const std::string path = WriteTempConf("hot.conf",
                                         "# hot roots\n"
                                         "root Engine::Score Popularity\n"
                                         "ban fsync ReadBlock\n"
                                         "allow FastHash\n");
  Result<HotPathConfig> cfg = LoadHotPathConfig(path);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_TRUE(cfg->loaded);
  ASSERT_EQ(cfg->roots.size(), 2u);
  EXPECT_EQ(cfg->roots[0], "Engine::Score");
  EXPECT_EQ(cfg->banned.count("ReadBlock"), 1u);
  EXPECT_TRUE(cfg->IsAllowed("FastHash", "FastHash"));
  EXPECT_TRUE(cfg->IsAllowed("Util::FastHash", "FastHash"));
  EXPECT_FALSE(cfg->IsAllowed("Other", "Other"));
}

TEST(Stats, JsonCarriesPassAndRuleTimings) {
  AnalyzerStats stats;
  stats.lex_ms = 1.5;
  stats.total_ms = 10.25;
  stats.files = 3;
  stats.functions = 7;
  stats.call_edges = 9;
  stats.rule_ms = {{"lock-order", 0.5}, {"guard-discipline", 0.25}};
  const std::string json = StatsToJson(stats);
  EXPECT_NE(json.find("\"total_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"passes\""), std::string::npos);
  EXPECT_NE(json.find("\"lex_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"files\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"functions\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"call_edges\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"guard-discipline\""), std::string::npos);
}

// ------------------------------------------------------- parallel analysis

TEST(RunAnalysis, DeterministicAcrossJobCounts) {
  const fs::path root = fs::path(testing::TempDir()) / "analyze_jobs_tree";
  fs::create_directories(root / "src" / "core");
  for (int i = 0; i < 6; ++i) {
    std::ofstream out(root / "src" / "core" /
                      ("f" + std::to_string(i) + ".cc"));
    // Nested guards + no lockorder.conf in this root -> one
    // missing-manifest diagnostic per file, on every scan.
    out << "void Nest" << i << "() {\n"
        << "  MutexLock a(&x_mu_);\n"
        << "  MutexLock b(&y_mu_);\n"
        << "}\n";
  }
  std::vector<std::vector<Diagnostic>> runs;
  for (const unsigned jobs : {1u, 4u}) {
    AnalyzerOptions opts;
    opts.root = root.string();
    opts.jobs = jobs;
    Result<std::vector<Diagnostic>> diags = RunAnalysis(opts);
    ASSERT_TRUE(diags.ok()) << diags.status().ToString();
    EXPECT_EQ(diags->size(), 6u) << "jobs=" << jobs;
    runs.push_back(*diags);
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].path, runs[1][i].path);
    EXPECT_EQ(runs[0][i].line, runs[1][i].line);
    EXPECT_EQ(runs[0][i].rule, runs[1][i].rule);
    EXPECT_EQ(runs[0][i].message, runs[1][i].message);
  }
  fs::remove_all(root);
}

void WriteTree(const fs::path& root,
               const std::vector<std::pair<std::string, std::string>>& files) {
  for (const auto& [rel, body] : files) {
    const fs::path path = root / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << body;
  }
}

TEST(RunAnalysis, SuppressionFiltersFindingsAndReportsStale) {
  const fs::path root = fs::path(testing::TempDir()) / "analyze_nolint_tree";
  fs::remove_all(root);
  WriteTree(
      root,
      {{"src/core/a.cc",
        "std::mutex m;  // NOLINT(tklus-naked-mutex): unit-test sanctioned\n"},
       {"src/core/b.cc",
        "int x = 0;  // NOLINT(tklus-naked-mutex): nothing fires here\n"}});
  AnalyzerOptions opts;
  opts.root = root.string();
  Result<std::vector<Diagnostic>> diags = RunAnalysis(opts);
  ASSERT_TRUE(diags.ok()) << diags.status().ToString();
  // a.cc's naked-mutex finding is silenced; b.cc's suppression silences
  // nothing and is itself the only finding.
  ASSERT_EQ(diags->size(), 1u);
  EXPECT_EQ((*diags)[0].rule, "suppression");
  EXPECT_EQ((*diags)[0].path, "src/core/b.cc");
  EXPECT_NE((*diags)[0].message.find("stale suppression"),
            std::string::npos);
  fs::remove_all(root);
}

TEST(RunAnalysis, InterproceduralPassDeterministicAcrossJobCounts) {
  // Cross-file lock chains, GUARDED_BY enforcement and hot-path
  // reachability all flow through the shared sequential program model;
  // the parallel rule phase around it must stay order-independent.
  const fs::path root = fs::path(testing::TempDir()) / "analyze_ipa_tree";
  fs::remove_all(root);
  WriteTree(
      root,
      {{"lockorder.conf",
        "lock a_mu_\nlock b_mu_\norder a_mu_ b_mu_\n"},
       {"hotpath.conf", "root HotLoop\nban ReadBlock\n"},
       {"src/core/inner.cc",
        "void Inner() {\n"
        "  MutexLock a(&a_mu_);\n"
        "}\n"},
       {"src/core/outer.cc",
        "void Outer() {\n"
        "  MutexLock b(&b_mu_);\n"
        "  Inner();\n"
        "}\n"},
       {"src/core/hot.cc",
        "void HotLoop(int n) {\n"
        "  std::string s = std::to_string(n);\n"
        "  ReadBlock(n);\n"
        "}\n"},
       {"src/core/widget.h",
        "class Widget {\n"
        " public:\n"
        "  int Get() const { return value_; }\n"
        " private:\n"
        "  Mutex mu_;\n"
        "  int value_ TKLUS_GUARDED_BY(mu_) = 0;\n"
        "};\n"}});
  std::vector<std::vector<Diagnostic>> runs;
  for (const unsigned jobs : {1u, 4u}) {
    AnalyzerOptions opts;
    opts.root = root.string();
    opts.jobs = jobs;
    Result<std::vector<Diagnostic>> diags = RunAnalysis(opts);
    ASSERT_TRUE(diags.ok()) << diags.status().ToString();
    runs.push_back(*diags);
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].path, runs[1][i].path);
    EXPECT_EQ(runs[0][i].line, runs[1][i].line);
    EXPECT_EQ(runs[0][i].rule, runs[1][i].rule);
    EXPECT_EQ(runs[0][i].message, runs[1][i].message);
  }
  // Each interprocedural rule actually fired on this tree.
  std::set<std::string> rules;
  for (const Diagnostic& d : runs[0]) rules.insert(d.rule);
  EXPECT_EQ(rules.count("lock-order-ipa"), 1u);
  EXPECT_EQ(rules.count("guard-discipline"), 1u);
  EXPECT_EQ(rules.count("hotpath-purity"), 1u);
  fs::remove_all(root);
}

TEST(RunAnalysis, PopulatesStats) {
  const fs::path root = fs::path(testing::TempDir()) / "analyze_stats_tree";
  fs::remove_all(root);
  WriteTree(root, {{"src/core/a.cc", "void F() {\n  G();\n}\n"},
                   {"src/core/b.cc", "void G() {\n}\n"}});
  AnalyzerOptions opts;
  opts.root = root.string();
  AnalyzerStats stats;
  Result<std::vector<Diagnostic>> diags = RunAnalysis(opts, &stats);
  ASSERT_TRUE(diags.ok()) << diags.status().ToString();
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.functions, 2u);
  EXPECT_EQ(stats.call_edges, 1u);
  EXPECT_GE(stats.total_ms, 0.0);
  EXPECT_EQ(stats.rule_ms.size(), BuildRuleSet().size());
  const std::string json = StatsToJson(stats);
  EXPECT_NE(json.find("\"files\": 2"), std::string::npos);
  fs::remove_all(root);
}

// ------------------------------------------------------------ SARIF golden

// Snapshot of the full SARIF envelope: the registered rule catalog plus
// a fixed diagnostic from each interprocedural rule. Adding or renaming
// a rule intentionally changes this — regenerate with
// `TKLUS_REGEN_GOLDEN=1 ./analyze_test` and review the diff.
TEST(Output, SarifGoldenSnapshot) {
  std::vector<RuleInfo> catalog;
  for (const auto& rule : BuildRuleSet()) {
    catalog.push_back(
        {std::string(rule->name()), std::string(rule->description())});
  }
  const std::vector<Diagnostic> diags = {
      {"lock-order-ipa", "src/core/engine.cc", 42,
       "interprocedural lock-order inversion: holding 'mu_' while the "
       "callee chain acquires 'append_mu_'"},
      {"guard-discipline", "src/core/widget.h", 8,
       "access to 'value_' (TKLUS_GUARDED_BY(mu_) on Widget) without "
       "holding 'mu_'"},
      {"hotpath-purity", "src/core/score.cc", 7,
       "string construction 'to_string' on a declared hot path"}};
  const std::string sarif = DiagnosticsToSarif(diags, catalog);
  const fs::path golden =
      fs::path(TKLUS_ANALYZE_GOLDEN_DIR) / "analyze_catalog.sarif";
  if (std::getenv("TKLUS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden);
    out << sarif;
    ASSERT_TRUE(out.good()) << "failed to write " << golden;
    GTEST_SKIP() << "regenerated " << golden;
  }
  std::ifstream in(golden);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden
                         << "; regenerate with TKLUS_REGEN_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), sarif)
      << "SARIF envelope changed; if intended, regenerate the golden "
         "with TKLUS_REGEN_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace tklus::analyze
