#ifndef TKLUS_COMMON_SERDE_H_
#define TKLUS_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "common/status.h"

namespace tklus {
namespace serde {

// Little-endian fixed-width binary primitives for the persistence formats
// (DFS images, forward index, engine artifacts). Writers never fail on
// their own (stream state is checked by the caller at the end); readers
// return false on truncation.

inline void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

inline void WriteI64(std::ostream& out, int64_t v) {
  WriteU64(out, static_cast<uint64_t>(v));
}

inline void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

inline void WriteDouble(std::ostream& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

inline void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline bool ReadU64(std::istream& in, uint64_t* v) {
  char buf[8];
  in.read(buf, 8);
  if (in.gcount() != 8) return false;
  std::memcpy(v, buf, 8);
  return true;
}

inline bool ReadI64(std::istream& in, int64_t* v) {
  uint64_t u;
  if (!ReadU64(in, &u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

inline bool ReadU32(std::istream& in, uint32_t* v) {
  char buf[4];
  in.read(buf, 4);
  if (in.gcount() != 4) return false;
  std::memcpy(v, buf, 4);
  return true;
}

inline bool ReadDouble(std::istream& in, double* v) {
  char buf[8];
  in.read(buf, 8);
  if (in.gcount() != 8) return false;
  std::memcpy(v, buf, 8);
  return true;
}

inline bool ReadString(std::istream& in, std::string* s) {
  uint64_t size;
  if (!ReadU64(in, &size)) return false;
  if (size > (1ULL << 32)) return false;  // corrupt length guard
  s->resize(size);
  in.read(s->data(), static_cast<std::streamsize>(size));
  return static_cast<uint64_t>(in.gcount()) == size;
}

}  // namespace serde
}  // namespace tklus

#endif  // TKLUS_COMMON_SERDE_H_
