file(REMOVE_RECURSE
  "libtklus_datagen.a"
)
