// Figure 8: single-keyword query efficiency, radius 5..100 km, Sum-score
// (Alg. 4) vs Max-score (Alg. 5) ranking. The paper finds the two close up
// to ~20 km and Max clearly ahead for larger radii thanks to its pruning,
// which has more candidates to cut.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace tklus;
  bench::Banner("Figure 8 — single-keyword query efficiency",
                "both grow with radius; Max-score (pruned) <= Sum-score, "
                "with the gap widening beyond ~20 km");
  const auto corpus = bench::MakeCorpus(bench::ScaleFromEnv());
  auto engine = bench::MakeEngine(corpus.dataset);
  datagen::WorkloadOptions wl;
  const auto workload = datagen::FilterByKeywordCount(
      MakeQueryWorkload(corpus, wl), 1);

  std::printf("%-10s %-10s %-10s %-13s %-13s %-11s %-11s %-11s\n",
              "radius km", "sum ms", "max ms", "sum threads", "max threads",
              "max pruned", "sum IO", "max IO");
  for (const double r : {5.0, 10.0, 20.0, 50.0, 100.0}) {
    const auto sum_stats = bench::RunQueries(
        *engine,
        bench::With(workload, r, 5, Semantics::kOr, Ranking::kSum));
    const auto max_stats = bench::RunQueries(
        *engine,
        bench::With(workload, r, 5, Semantics::kOr, Ranking::kMax));
    std::printf(
        "%-10.0f %-10.2f %-10.2f %-13.1f %-13.1f %-11.1f %-11.1f %-11.1f\n",
        r, sum_stats.mean_ms, max_stats.mean_ms,
        sum_stats.mean_threads_built, max_stats.mean_threads_built,
        max_stats.mean_threads_pruned, sum_stats.mean_db_reads,
        max_stats.mean_db_reads);
  }
  return 0;
}
