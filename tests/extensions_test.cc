#include <gtest/gtest.h>

#include "baseline/naive_scan.h"
#include "core/engine.h"
#include "core/scoring.h"
#include "datagen/cities.h"
#include "datagen/tweet_generator.h"
#include "model/gazetteer.h"

namespace tklus {
namespace {

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

Post MakePost(TweetId sid, UserId uid, double lat, double lon,
              const std::string& text, TweetId rsid = kNoId,
              UserId ruid = kNoId) {
  Post p;
  p.sid = sid;
  p.uid = uid;
  p.location = GeoPoint{lat, lon};
  p.text = text;
  p.rsid = rsid;
  p.ruid = ruid;
  return p;
}

// ----------------------------------------------------------- temporal

// Two users, both on-topic and equally close; user 1's tweets are old,
// user 2's are recent.
Dataset TemporalDataset() {
  Dataset ds;
  ds.Add(MakePost(1000, 1, 10.0, 10.0, "great cafe here"));
  ds.Add(MakePost(1001, 1, 10.0, 10.0, "cafe again"));
  ds.Add(MakePost(9000, 2, 10.0, 10.0, "great cafe there"));
  ds.Add(MakePost(9001, 2, 10.0, 10.0, "cafe encore"));
  return ds;
}

TkLusQuery CafeQuery() {
  TkLusQuery q;
  q.location = GeoPoint{10.0, 10.0};
  q.radius_km = 10.0;
  q.keywords = {"cafe"};
  q.k = 5;
  return q;
}

TEST(TemporalTest, WindowFiltersOldTweets) {
  auto engine = TkLusEngine::Build(TemporalDataset());
  ASSERT_TRUE(engine.ok());
  TkLusQuery q = CafeQuery();
  q.temporal.begin = 5000;
  auto result = (*engine)->Query(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->users.size(), 1u);
  EXPECT_EQ(result->users[0].uid, 2);  // only user 2's tweets qualify

  q.temporal.begin.reset();
  q.temporal.end = 5000;
  result = (*engine)->Query(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->users.size(), 1u);
  EXPECT_EQ(result->users[0].uid, 1);
}

TEST(TemporalTest, ClosedWindowBothEnds) {
  auto engine = TkLusEngine::Build(TemporalDataset());
  ASSERT_TRUE(engine.ok());
  TkLusQuery q = CafeQuery();
  q.temporal.begin = 1001;
  q.temporal.end = 9000;
  auto result = (*engine)->Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->users.size(), 2u);  // one tweet of each user
  q.temporal.begin = 2000;
  q.temporal.end = 3000;
  result = (*engine)->Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->users.empty());
}

TEST(TemporalTest, RecencyWeightingPrefersRecentUser) {
  // Give user 1 (old tweets) a big thread so it wins without decay.
  Dataset ds = TemporalDataset();
  for (int i = 0; i < 10; ++i) {
    ds.Add(MakePost(2000 + i, 100 + i, 10.0, 10.0, "nice!", 1000, 1));
  }
  auto engine = TkLusEngine::Build(ds);
  ASSERT_TRUE(engine.ok());
  TkLusQuery q = CafeQuery();
  auto plain = (*engine)->Query(q);
  ASSERT_TRUE(plain.ok());
  ASSERT_GE(plain->users.size(), 2u);
  EXPECT_EQ(plain->users[0].uid, 1);  // popularity wins without decay

  // With a sharp recency decay anchored at the corpus end, the old
  // thread's relevance vanishes and the recent user wins.
  q.temporal.half_life = 500.0;
  q.temporal.reference = 9001;
  auto decayed = (*engine)->Query(q);
  ASSERT_TRUE(decayed.ok());
  ASSERT_GE(decayed->users.size(), 2u);
  EXPECT_EQ(decayed->users[0].uid, 2);
}

TEST(TemporalTest, HalfLifeRequiresReference) {
  auto engine = TkLusEngine::Build(TemporalDataset());
  ASSERT_TRUE(engine.ok());
  TkLusQuery q = CafeQuery();
  q.temporal.half_life = 100.0;
  EXPECT_FALSE((*engine)->Query(q).ok());
  q.temporal.reference = 9001;
  q.temporal.half_life = -5.0;
  EXPECT_FALSE((*engine)->Query(q).ok());
}

TEST(TemporalTest, EngineMatchesOracleWithTemporal) {
  TweetGenerator::Options gen;
  gen.num_users = 200;
  gen.num_tweets = 5000;
  gen.num_cities = 3;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);
  const NaiveScanner scanner(&corpus.dataset);
  auto engine = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(engine.ok());
  TkLusQuery q;
  q.location = corpus.city_centers[0];
  q.radius_km = 15.0;
  q.keywords = {"restaurant"};
  q.k = 10;
  q.temporal.begin = gen.start_sid + 1000;
  q.temporal.end = gen.start_sid + 4000;
  q.temporal.half_life = 800.0;
  q.temporal.reference = gen.start_sid + 5000;
  auto got = (*engine)->Query(q);
  ASSERT_TRUE(got.ok());
  const QueryResult want = scanner.Process(q);
  ASSERT_EQ(got->users.size(), want.users.size());
  for (size_t i = 0; i < want.users.size(); ++i) {
    EXPECT_EQ(got->users[i].uid, want.users[i].uid) << i;
    EXPECT_NEAR(got->users[i].score, want.users[i].score, 1e-9);
  }
}

TEST(RecencyWeightTest, Shape) {
  EXPECT_DOUBLE_EQ(RecencyWeight(100, 100, 10), 1.0);
  EXPECT_DOUBLE_EQ(RecencyWeight(150, 100, 10), 1.0);  // future clamps
  EXPECT_NEAR(RecencyWeight(90, 100, 10), 0.5, 1e-12);
  EXPECT_NEAR(RecencyWeight(80, 100, 10), 0.25, 1e-12);
  EXPECT_GT(RecencyWeight(99, 100, 10), RecencyWeight(50, 100, 10));
}

// ------------------------------------------------------- gazetteer

TEST(GazetteerTest, AddAndLookupNormalized) {
  Gazetteer gazetteer;
  gazetteer.Add("Toronto", GeoPoint{43.68, -79.37});
  gazetteer.Add("paris", GeoPoint{48.86, 2.35});
  // Lookups use normalized (stemmed) terms, as produced by the tokenizer.
  Tokenizer tokenizer;
  const auto toronto_terms = tokenizer.Tokenize("toronto");
  ASSERT_EQ(toronto_terms.size(), 1u);
  EXPECT_TRUE(gazetteer.Lookup(toronto_terms[0]).has_value());
  const auto paris_terms = tokenizer.Tokenize("paris");
  ASSERT_EQ(paris_terms.size(), 1u);
  EXPECT_TRUE(gazetteer.Lookup(paris_terms[0]).has_value());
  EXPECT_FALSE(gazetteer.Lookup("london").has_value());
  EXPECT_EQ(gazetteer.size(), 2u);
}

TEST(GazetteerTest, CityGazetteerCoversBuiltInTable) {
  const Gazetteer gazetteer = datagen::MakeCityGazetteer();
  EXPECT_EQ(gazetteer.size(), datagen::WorldCities().size());
}

TEST(InferLocationsTest, FillsUntaggedFromText) {
  Dataset ds;
  Post tagged = MakePost(1, 1, 43.68, -79.37, "hotel in toronto");
  Post untagged_named = MakePost(2, 2, 0, 0, "amazing hotel in paris");
  untagged_named.geo_source = GeoSource::kNone;
  Post untagged_unnamed = MakePost(3, 3, 0, 0, "amazing hotel somewhere");
  untagged_unnamed.geo_source = GeoSource::kNone;
  ds.Add(tagged);
  ds.Add(untagged_named);
  ds.Add(untagged_unnamed);

  const Gazetteer gazetteer = datagen::MakeCityGazetteer();
  const LocationInferenceStats stats = InferLocations(&ds, gazetteer);
  EXPECT_EQ(stats.untagged, 2u);
  EXPECT_EQ(stats.inferred, 1u);
  EXPECT_EQ(ds.posts()[0].geo_source, GeoSource::kTagged);
  EXPECT_EQ(ds.posts()[1].geo_source, GeoSource::kInferred);
  EXPECT_NEAR(ds.posts()[1].location.lat, 48.8566, 1e-3);
  EXPECT_EQ(ds.posts()[2].geo_source, GeoSource::kNone);
}

TEST(InferLocationsTest, EndToEndRecoversHiddenLocalUser) {
  // User 7 posts about cafes in Paris but never geo-tags; without
  // inference the engine cannot see them, with inference it can.
  Dataset ds;
  ds.Add(MakePost(1, 1, 48.8566, 2.3522, "cafe visit"));
  for (TweetId sid = 10; sid < 14; ++sid) {
    Post p = MakePost(sid, 7, 0, 0, "the best paris cafe ever");
    p.geo_source = GeoSource::kNone;
    ds.Add(p);
  }
  TkLusQuery q;
  q.location = GeoPoint{48.8566, 2.3522};
  q.radius_km = 10.0;
  q.keywords = {"cafe"};
  q.k = 5;

  auto blind = TkLusEngine::Build(ds);
  ASSERT_TRUE(blind.ok());
  auto blind_result = (*blind)->Query(q);
  ASSERT_TRUE(blind_result.ok());
  ASSERT_EQ(blind_result->users.size(), 1u);
  EXPECT_EQ(blind_result->users[0].uid, 1);

  InferLocations(&ds, datagen::MakeCityGazetteer());
  auto informed = TkLusEngine::Build(ds);
  ASSERT_TRUE(informed.ok());
  auto informed_result = (*informed)->Query(q);
  ASSERT_TRUE(informed_result.ok());
  ASSERT_EQ(informed_result->users.size(), 2u);
  EXPECT_EQ(informed_result->users[0].uid, 7);  // 4 relevant tweets
}

TEST(InferLocationsTest, GeneratedUntaggedCorpus) {
  TweetGenerator::Options gen;
  gen.num_users = 200;
  gen.num_tweets = 5000;
  gen.num_cities = 4;
  gen.untagged_frac = 0.3;
  GeneratedCorpus corpus = TweetGenerator::Generate(gen);
  size_t untagged = 0;
  for (const Post& p : corpus.dataset.posts()) {
    if (!p.HasLocation()) ++untagged;
  }
  // ~30% untagged.
  EXPECT_GT(untagged, corpus.dataset.size() / 5);
  EXPECT_LT(untagged, corpus.dataset.size() * 2 / 5);

  const LocationInferenceStats stats =
      InferLocations(&corpus.dataset, datagen::MakeCityGazetteer());
  EXPECT_EQ(stats.untagged, untagged);
  // ~80% of untagged posts name their city.
  EXPECT_GT(stats.inferred, untagged * 6 / 10);
  // Inferred locations are real city centres.
  for (const Post& p : corpus.dataset.posts()) {
    if (p.geo_source != GeoSource::kInferred) continue;
    bool at_city = false;
    for (const auto& city : datagen::WorldCities()) {
      if (p.location == city.center) at_city = true;
    }
    EXPECT_TRUE(at_city);
  }
}

TEST(InferLocationsTest, UntaggedExcludedFromIndexAndProfiles) {
  Dataset ds;
  ds.Add(MakePost(1, 1, 10.0, 10.0, "cafe one"));
  Post untagged = MakePost(2, 1, 99.0, 99.0, "cafe two");
  untagged.geo_source = GeoSource::kNone;
  ds.Add(untagged);
  auto engine = TkLusEngine::Build(ds);
  ASSERT_TRUE(engine.ok());
  // Only the tagged post counts in the Def. 9 profile.
  ASSERT_EQ((*engine)->user_locations().at(1).size(), 1u);
  TkLusQuery q;
  q.location = GeoPoint{10.0, 10.0};
  q.radius_km = 5.0;
  q.keywords = {"cafe"};
  q.k = 5;
  auto result = (*engine)->Query(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->users.size(), 1u);
  // delta(u) = 1.0 (single tagged post at the query point), so the
  // untagged post did not dilute the Def. 9 average.
  EXPECT_GT(result->users[0].score, 0.5);
}

}  // namespace
}  // namespace tklus
