#ifndef TKLUS_GEO_ZORDER_H_
#define TKLUS_GEO_ZORDER_H_

#include <cstdint>

namespace tklus {
namespace zorder {

// Z-order (Morton) curve utilities (§IV-B cites [22]). The geohash bit
// string *is* a Z-order key over (lon, lat) halvings, so these helpers are
// shared by the cover construction and by tests that check contiguity of
// cells under the curve.

// Spreads the low 32 bits of `x` so bit i lands at position 2*i.
inline uint64_t SpreadBits(uint32_t x) {
  uint64_t v = x;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

// Inverse of SpreadBits: collects every other bit starting at bit 0.
inline uint32_t CollectBits(uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v | (v >> 1)) & 0x3333333333333333ULL;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(v);
}

// Interleaves x (even positions, bit 0 of x at bit 0) and y (odd positions).
inline uint64_t Interleave(uint32_t x, uint32_t y) {
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

inline void Deinterleave(uint64_t z, uint32_t* x, uint32_t* y) {
  *x = CollectBits(z);
  *y = CollectBits(z >> 1);
}

}  // namespace zorder
}  // namespace tklus

#endif  // TKLUS_GEO_ZORDER_H_
