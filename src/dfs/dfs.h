#ifndef TKLUS_DFS_DFS_H_
#define TKLUS_DFS_DFS_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/mutex.h"
#include "common/status.h"

namespace tklus {

// A simulated HDFS (Figure 3): files are split into fixed-size blocks that
// are placed round-robin on named data nodes. The simulation keeps block
// bytes in memory but faithfully models the quantities the paper measures —
// total stored bytes ("index size in HDFS", Fig. 6), per-node placement,
// and the sequential-vs-random read pattern of postings fetches ("random
// access to inverted index in HDFS is disk-based", §VI-B1).
//
// Fault model: every block carries a CRC32 verified on read (at-rest
// corruption surfaces as kCorruption, never as garbage postings); a data
// node can be marked down (reads of its blocks fail with kUnavailable
// until it recovers); and an attached FaultInjector can fail or corrupt
// reads probabilistically or on schedule (site faults::kDfsRead).
class SimulatedDfs {
 public:
  struct Options {
    size_t block_size = 64 * 1024;
    int num_data_nodes = 3;  // Table III: one master + two slaves
  };

  struct NodeStats {
    uint64_t blocks_stored = 0;
    uint64_t bytes_stored = 0;
    uint64_t block_reads = 0;
    uint64_t seeks = 0;  // non-sequential block accesses
  };

  explicit SimulatedDfs(Options options);
  SimulatedDfs() : SimulatedDfs(Options{}) {}

  SimulatedDfs(const SimulatedDfs&) = delete;
  SimulatedDfs& operator=(const SimulatedDfs&) = delete;

  // Appends `data` to `path`, creating the file if needed.
  Status Append(const std::string& path, std::string_view data);

  // Reads `length` bytes at `offset` into `out`. Fails past EOF.
  Status ReadAt(const std::string& path, uint64_t offset, uint64_t length,
                std::string* out);

  // Whole-file read.
  Result<std::string> ReadAll(const std::string& path);

  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);
  Result<uint64_t> FileSize(const std::string& path) const;

  // Paths with the given prefix, sorted (the namespace is a sorted map,
  // like an HDFS directory listing).
  std::vector<std::string> List(const std::string& prefix = "") const;

  // Serializes the whole namespace + contents (options, files, data) so
  // an index built once can be reopened later. Load replaces this DFS's
  // state; block placement and checksums are re-derived deterministically.
  Status Save(std::ostream& out) const;
  Status Load(std::istream& in);

  uint64_t total_bytes() const;
  size_t file_count() const;
  // Consistent snapshot of the per-node placement/read stats, copied under
  // the lock (a reference would race with concurrent appends/reads).
  std::vector<NodeStats> node_stats() const;
  void ResetStats();

  // Marks one data node dead (reads of blocks stored there return
  // kUnavailable) or alive again. Writes still place blocks everywhere —
  // the simulation has no replication, so a down node makes part of the
  // namespace unreadable, exactly the degraded state federation must
  // survive.
  Status SetNodeDown(int node, bool down);
  bool node_is_down(int node) const;

  // Wires a shared fault injector into the read path (site
  // faults::kDfsRead); nullptr detaches. The injector must outlive this
  // DFS.
  void set_fault_injector(FaultInjector* injector);
  FaultInjector* fault_injector() const;

  const Options& options() const { return options_; }

 private:
  struct Block {
    int node = 0;
    uint32_t crc = 0;  // CRC32 of `data`, maintained by Append
    std::string data;
  };
  struct File {
    std::vector<Block> blocks;
    uint64_t size = 0;
  };

  Options options_;
  // `mu_` guards the whole namespace: every public entry point takes it
  // before touching any field below, so readers never observe a file with
  // blocks mid-append or stats mid-update.
  mutable Mutex mu_;
  std::map<std::string, File> files_ TKLUS_GUARDED_BY(mu_);
  std::vector<NodeStats> nodes_ TKLUS_GUARDED_BY(mu_);
  std::vector<char> node_down_ TKLUS_GUARDED_BY(mu_);
  int next_node_ TKLUS_GUARDED_BY(mu_) = 0;
  FaultInjector* faults_ TKLUS_GUARDED_BY(mu_) = nullptr;
  // Last block index read per (node) — for seek accounting.
  mutable std::vector<int64_t> last_block_read_ TKLUS_GUARDED_BY(mu_);
};

}  // namespace tklus

#endif  // TKLUS_DFS_DFS_H_
