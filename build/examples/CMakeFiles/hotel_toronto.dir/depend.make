# Empty dependencies file for hotel_toronto.
# This may be replaced when dependencies are built.
