#ifndef TKLUS_COMMON_FILE_IO_H_
#define TKLUS_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace tklus {
namespace fileio {

// Crash-safe, corruption-evident whole-file persistence for saved engine
// artifacts (index image, DFS image, engine state).
//
// On-disk layout:   [payload bytes][16-byte footer]
// Footer layout:    [u32 version][u32 crc32(payload)][u64 magic]
// (magic last, so a reader can locate the footer from the end of any file
// regardless of payload length; all fields little-endian).
//
// WriteFileAtomic writes payload + footer to `path + ".tmp"`, fsyncs, then
// renames over `path` — a crash mid-save leaves either the old file or the
// new one, never a torn mix. ReadFileVerified re-derives the CRC and
// returns kCorruption on any byte-level damage (bad magic, bad version,
// truncated footer, CRC mismatch), kNotFound when the file is absent.

Status WriteFileAtomic(const std::string& path, std::string_view payload);

Result<std::string> ReadFileVerified(const std::string& path);

}  // namespace fileio
}  // namespace tklus

#endif  // TKLUS_COMMON_FILE_IO_H_
