file(REMOVE_RECURSE
  "../bench/bench_fig8_single_keyword"
  "../bench/bench_fig8_single_keyword.pdb"
  "CMakeFiles/bench_fig8_single_keyword.dir/bench_fig8_single_keyword.cpp.o"
  "CMakeFiles/bench_fig8_single_keyword.dir/bench_fig8_single_keyword.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_single_keyword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
