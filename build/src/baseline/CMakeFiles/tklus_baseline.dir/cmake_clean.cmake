file(REMOVE_RECURSE
  "CMakeFiles/tklus_baseline.dir/centralized_builder.cc.o"
  "CMakeFiles/tklus_baseline.dir/centralized_builder.cc.o.d"
  "CMakeFiles/tklus_baseline.dir/irtree.cc.o"
  "CMakeFiles/tklus_baseline.dir/irtree.cc.o.d"
  "CMakeFiles/tklus_baseline.dir/naive_scan.cc.o"
  "CMakeFiles/tklus_baseline.dir/naive_scan.cc.o.d"
  "CMakeFiles/tklus_baseline.dir/rtree.cc.o"
  "CMakeFiles/tklus_baseline.dir/rtree.cc.o.d"
  "libtklus_baseline.a"
  "libtklus_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
