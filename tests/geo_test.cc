#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "geo/circle_cover.h"
#include "geo/distance.h"
#include "geo/geohash.h"
#include "geo/point.h"
#include "geo/quadtree.h"
#include "geo/zorder.h"

namespace tklus {
namespace {

// ---------------------------------------------------------------- geohash

TEST(GeohashTest, PaperTableIvExample) {
  // Table IV: (-23.994140625, -46.23046875) at lengths 1..4.
  const GeoPoint p{-23.994140625, -46.23046875};
  EXPECT_EQ(geohash::Encode(p, 1), "6");
  EXPECT_EQ(geohash::Encode(p, 2), "6g");
  EXPECT_EQ(geohash::Encode(p, 3), "6gx");
  EXPECT_EQ(geohash::Encode(p, 4), "6gxp");
}

TEST(GeohashTest, KnownLandmarks) {
  // Reference geohashes computed with the standard algorithm.
  EXPECT_EQ(geohash::Encode(GeoPoint{57.64911, 10.40744}, 11), "u4pruydqqvj");
  EXPECT_EQ(geohash::Encode(GeoPoint{42.6, -5.6}, 5), "ezs42");
}

TEST(GeohashTest, EncodeDecodeRoundTrip) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const GeoPoint p{rng.Uniform(-90, 90), rng.Uniform(-180, 180)};
    for (int len = 1; len <= 8; ++len) {
      const std::string h = geohash::Encode(p, len);
      Result<BoundingBox> box = geohash::DecodeBox(h);
      ASSERT_TRUE(box.ok());
      EXPECT_TRUE(box->Contains(p))
          << h << " does not contain " << p.lat << "," << p.lon;
    }
  }
}

TEST(GeohashTest, PrefixPropertyOfNestedCells) {
  // A longer geohash refines the shorter one: prefixes must match.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint p{rng.Uniform(-90, 90), rng.Uniform(-180, 180)};
    const std::string h8 = geohash::Encode(p, 8);
    for (int len = 1; len < 8; ++len) {
      EXPECT_EQ(geohash::Encode(p, len), h8.substr(0, len));
    }
  }
}

TEST(GeohashTest, DecodeBoxNesting) {
  Result<BoundingBox> outer = geohash::DecodeBox("6g");
  Result<BoundingBox> inner = geohash::DecodeBox("6gxp");
  ASSERT_TRUE(outer.ok());
  ASSERT_TRUE(inner.ok());
  EXPECT_LE(outer->min_lat, inner->min_lat);
  EXPECT_GE(outer->max_lat, inner->max_lat);
  EXPECT_LE(outer->min_lon, inner->min_lon);
  EXPECT_GE(outer->max_lon, inner->max_lon);
}

TEST(GeohashTest, InvalidInputRejected) {
  EXPECT_FALSE(geohash::DecodeBox("").ok());
  EXPECT_FALSE(geohash::DecodeBox("6ga").ok());  // 'a' not in alphabet
  EXPECT_FALSE(geohash::IsValid("ilo"));
  EXPECT_TRUE(geohash::IsValid("6gxp"));
}

TEST(GeohashTest, EncodeBitsMatchesCharacters) {
  const GeoPoint p{-23.994140625, -46.23046875};
  // 20 bits == 4 chars.
  const uint64_t bits = geohash::EncodeBits(p, 20);
  // "6gxp": 6=00110 g=01111 x=11101 p=10101
  EXPECT_EQ(bits, 0b00110011111110110101ULL);
}

TEST(GeohashTest, CellSpansHalveWithBits) {
  double lat1, lon1, lat2, lon2;
  geohash::CellSpanDegrees(1, &lat1, &lon1);
  geohash::CellSpanDegrees(2, &lat2, &lon2);
  // 5 more bits: lon halves 3 times at odd->even? Overall area shrinks 32x.
  EXPECT_NEAR((lat1 * lon1) / (lat2 * lon2), 32.0, 1e-9);
}

TEST(GeohashTest, NeighborsAreAdjacent) {
  const std::string h = geohash::Encode(GeoPoint{48.86, 2.35}, 5);
  const auto neighbors = geohash::Neighbors(h);
  EXPECT_EQ(neighbors.size(), 8u);
  Result<BoundingBox> box = geohash::DecodeBox(h);
  ASSERT_TRUE(box.ok());
  for (const std::string& nb : neighbors) {
    EXPECT_NE(nb, h);
    Result<BoundingBox> nbox = geohash::DecodeBox(nb);
    ASSERT_TRUE(nbox.ok());
    // Adjacent: the boxes touch (min distance ~ 0).
    const double gap_lat =
        std::max(0.0, std::max(nbox->min_lat - box->max_lat,
                               box->min_lat - nbox->max_lat));
    const double gap_lon =
        std::max(0.0, std::max(nbox->min_lon - box->max_lon,
                               box->min_lon - nbox->max_lon));
    EXPECT_LT(gap_lat, 1e-9);
    EXPECT_LT(gap_lon, 1e-9);
  }
}

TEST(GeohashTest, NeighborsAtDateline) {
  const std::string h = geohash::Encode(GeoPoint{0.0, 179.99}, 4);
  const auto neighbors = geohash::Neighbors(h);
  EXPECT_EQ(neighbors.size(), 8u);  // wraps around, none dropped
}

TEST(GeohashTest, NeighborsNearPoleDropped) {
  const std::string h = geohash::Encode(GeoPoint{89.9, 0.0}, 1);
  const auto neighbors = geohash::Neighbors(h);
  EXPECT_LT(neighbors.size(), 8u);  // northern row is off the pole
}

// ---------------------------------------------------------------- distance

TEST(DistanceTest, ZeroForIdenticalPoints) {
  const GeoPoint p{10.5, 20.5};
  EXPECT_DOUBLE_EQ(EuclideanKm(p, p), 0.0);
  EXPECT_DOUBLE_EQ(HaversineKm(p, p), 0.0);
}

TEST(DistanceTest, OneDegreeLatitudeIsAbout111Km) {
  const double d = EuclideanKm(GeoPoint{0, 0}, GeoPoint{1, 0});
  EXPECT_NEAR(d, 111.19, 0.2);
}

TEST(DistanceTest, EquirectangularCloseToHaversineAtCityScale) {
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const GeoPoint a{rng.Uniform(-60, 60), rng.Uniform(-179, 179)};
    const GeoPoint b{a.lat + rng.Uniform(-0.3, 0.3),
                     a.lon + rng.Uniform(-0.3, 0.3)};
    const double de = EuclideanKm(a, b);
    const double dh = HaversineKm(a, b);
    EXPECT_NEAR(de, dh, std::max(0.05, dh * 0.01));
  }
}

TEST(DistanceTest, Symmetry) {
  const GeoPoint a{43.68, -79.37}, b{43.70, -79.40};
  EXPECT_DOUBLE_EQ(EuclideanKm(a, b), EuclideanKm(b, a));
}

TEST(DistanceTest, TriangleInequality) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint a{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    const GeoPoint b{a.lat + rng.Uniform(-1, 1), a.lon + rng.Uniform(-1, 1)};
    const GeoPoint c{a.lat + rng.Uniform(-1, 1), a.lon + rng.Uniform(-1, 1)};
    EXPECT_LE(HaversineKm(a, c),
              HaversineKm(a, b) + HaversineKm(b, c) + 1e-9);
  }
}

TEST(DistanceTest, MinDistanceToContainingBoxIsZero) {
  BoundingBox box{40, 50, -10, 10};
  EXPECT_DOUBLE_EQ(MinDistanceKm(box, GeoPoint{45, 0}), 0.0);
  EXPECT_GT(MinDistanceKm(box, GeoPoint{55, 0}), 500.0);
}

// -------------------------------------------------------------- zorder

TEST(ZorderTest, InterleaveRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.Next());
    const uint32_t y = static_cast<uint32_t>(rng.Next());
    uint32_t x2, y2;
    zorder::Deinterleave(zorder::Interleave(x, y), &x2, &y2);
    EXPECT_EQ(x, x2);
    EXPECT_EQ(y, y2);
  }
}

TEST(ZorderTest, KnownPattern) {
  EXPECT_EQ(zorder::Interleave(0b11, 0b00), 0b0101ULL);
  EXPECT_EQ(zorder::Interleave(0b00, 0b11), 0b1010ULL);
}

TEST(ZorderTest, MonotoneInSmallGrid) {
  // Z-order visits (0,0) (1,0) (0,1) (1,1) within a 2x2 block.
  EXPECT_LT(zorder::Interleave(0, 0), zorder::Interleave(1, 0));
  EXPECT_LT(zorder::Interleave(1, 0), zorder::Interleave(0, 1));
  EXPECT_LT(zorder::Interleave(0, 1), zorder::Interleave(1, 1));
}

// -------------------------------------------------------------- cover

TEST(CircleCoverTest, ContainsCenterCell) {
  const GeoPoint q{43.6839128037, -79.37356590};  // the paper's Fig. 1 query
  const auto cells = GeohashCircleCover(q, 10.0, 4);
  ASSERT_FALSE(cells.empty());
  const std::string center_cell = geohash::Encode(q, 4);
  EXPECT_NE(std::find(cells.begin(), cells.end(), center_cell), cells.end());
}

TEST(CircleCoverTest, SortedAndUnique) {
  const auto cells = GeohashCircleCover(GeoPoint{43.68, -79.37}, 20.0, 4);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end()));
  EXPECT_EQ(std::set<std::string>(cells.begin(), cells.end()).size(),
            cells.size());
}

TEST(CircleCoverTest, CoversRandomPointsInCircle) {
  // Property: every point within the radius falls in some covered cell.
  Rng rng(9);
  const GeoPoint q{43.68, -79.37};
  const double r = 15.0;
  const auto cells = GeohashCircleCover(q, r, 4);
  const std::set<std::string> cell_set(cells.begin(), cells.end());
  for (int i = 0; i < 2000; ++i) {
    const GeoPoint p{q.lat + rng.Uniform(-0.2, 0.2),
                     q.lon + rng.Uniform(-0.3, 0.3)};
    if (EuclideanKm(p, q) > r) continue;
    EXPECT_TRUE(cell_set.count(geohash::Encode(p, 4)))
        << "uncovered point " << p.lat << "," << p.lon;
  }
}

TEST(CircleCoverTest, MoreCellsAtLongerLength) {
  const GeoPoint q{48.86, 2.35};
  const auto c3 = GeohashCircleCover(q, 10.0, 3);
  const auto c4 = GeohashCircleCover(q, 10.0, 4);
  EXPECT_GT(c4.size(), c3.size());
}

TEST(CircleCoverTest, TighterAtLongerLength) {
  const GeoPoint q{48.86, 2.35};
  const double r = 10.0;
  const double ratio3 = CoverAreaRatio(GeohashCircleCover(q, r, 3), q, r);
  const double ratio4 = CoverAreaRatio(GeohashCircleCover(q, r, 4), q, r);
  EXPECT_GE(ratio3, 1.0);
  EXPECT_GE(ratio4, 1.0);
  EXPECT_LT(ratio4, ratio3);  // finer cells waste less area
}

TEST(CircleCoverTest, ZeroRadiusSingleCell) {
  const auto cells = GeohashCircleCover(GeoPoint{10, 10}, 0.0, 5);
  EXPECT_EQ(cells.size(), 1u);
}

TEST(CircleCoverTest, InvalidInputsEmpty) {
  EXPECT_TRUE(GeohashCircleCover(GeoPoint{0, 0}, -1.0, 4).empty());
  EXPECT_TRUE(GeohashCircleCover(GeoPoint{0, 0}, 5.0, 0).empty());
}

// -------------------------------------------------------------- quadtree

TEST(QuadtreeTest, InsertAndCount) {
  Quadtree tree;
  Rng rng(5);
  for (uint64_t i = 0; i < 1000; ++i) {
    tree.Insert(GeoPoint{rng.Uniform(-80, 80), rng.Uniform(-170, 170)}, i);
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.node_count(), 1u);
}

TEST(QuadtreeTest, RangeQueryMatchesBruteForce) {
  Quadtree tree;
  Rng rng(6);
  std::vector<GeoPoint> points;
  for (uint64_t i = 0; i < 2000; ++i) {
    // Cluster around Toronto so queries have non-trivial results.
    const GeoPoint p{43.7 + rng.Normal(0, 0.2), -79.4 + rng.Normal(0, 0.2)};
    points.push_back(p);
    tree.Insert(p, i);
  }
  const GeoPoint q{43.7, -79.4};
  for (const double r : {1.0, 5.0, 20.0, 100.0}) {
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < points.size(); ++i) {
      if (EuclideanKm(points[i], q) <= r) expected.insert(i);
    }
    std::set<uint64_t> got;
    for (const auto& e : tree.RangeQuery(q, r)) got.insert(e.id);
    EXPECT_EQ(got, expected) << "radius " << r;
  }
}

TEST(QuadtreeTest, BoxQueryMatchesBruteForce) {
  Quadtree tree;
  Rng rng(8);
  std::vector<GeoPoint> points;
  for (uint64_t i = 0; i < 1000; ++i) {
    const GeoPoint p{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    points.push_back(p);
    tree.Insert(p, i);
  }
  const BoundingBox box{-2, 3, -1, 4};
  std::set<uint64_t> expected;
  for (uint64_t i = 0; i < points.size(); ++i) {
    if (box.Contains(points[i])) expected.insert(i);
  }
  std::set<uint64_t> got;
  for (const auto& e : tree.BoxQuery(box)) got.insert(e.id);
  EXPECT_EQ(got, expected);
}

TEST(QuadtreeTest, DuplicatePointsDoNotInfinitelySplit) {
  Quadtree tree(BoundingBox{}, /*capacity=*/4, /*max_depth=*/8);
  for (uint64_t i = 0; i < 100; ++i) {
    tree.Insert(GeoPoint{1.0, 1.0}, i);
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_LE(tree.depth(), 8);
  EXPECT_EQ(tree.RangeQuery(GeoPoint{1.0, 1.0}, 0.1).size(), 100u);
}

TEST(QuadtreeTest, EmptyTreeQueries) {
  Quadtree tree;
  EXPECT_TRUE(tree.RangeQuery(GeoPoint{0, 0}, 100).empty());
  EXPECT_EQ(tree.size(), 0u);
}

}  // namespace
}  // namespace tklus
