#ifndef TKLUS_DATAGEN_CITIES_H_
#define TKLUS_DATAGEN_CITIES_H_

#include <string>
#include <vector>

#include "geo/point.h"
#include "model/gazetteer.h"

namespace tklus {
namespace datagen {

// A world city the spatial mixture model clusters tweets around.
struct City {
  std::string name;   // lowercase single token, usable as a tweet word
  GeoPoint center;
  double weight;      // relative share of the population
};

// Built-in city table (20 cities). Weights follow a rough power law so the
// synthetic corpus has the heavy spatial skew of real geo-tagged tweets.
const std::vector<City>& WorldCities();

// A gazetteer over the built-in city table, for the implicit-location
// extension (model/gazetteer.h).
Gazetteer MakeCityGazetteer();

}  // namespace datagen
}  // namespace tklus

#endif  // TKLUS_DATAGEN_CITIES_H_
