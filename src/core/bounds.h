#ifndef TKLUS_CORE_BOUNDS_H_
#define TKLUS_CORE_BOUNDS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "model/dataset.h"
#include "social/social_graph.h"
#include "text/tokenizer.h"

namespace tklus {

// Pre-computed upper bounds on thread popularity (§V-B): the exact global
// maximum thread score, plus per-keyword ("hot keyword") maxima for the
// most frequent terms — "for each top frequent keyword, a specific upper
// bound popularity is pre-computed by offline constructing tweet threads
// and selecting the largest thread score".
class UpperBoundRegistry {
 public:
  struct Options {
    size_t num_hot_keywords = 10;  // Table II size
    int max_depth = 6;             // thread depth cap d
    double epsilon = 0.1;
  };

  // Offline pass: constructs every tweet's thread in memory, records the
  // global max popularity and per-hot-term maxima.
  static UpperBoundRegistry Build(const Dataset& dataset,
                                  const SocialGraph& graph,
                                  const Tokenizer& tokenizer,
                                  Options options);

  // Rebuilds a registry from persisted values (engine Open path).
  static UpperBoundRegistry FromParts(
      double global_bound, std::unordered_map<std::string, double> hot) {
    UpperBoundRegistry registry;
    registry.global_bound_ = global_bound;
    registry.hot_bounds_ = std::move(hot);
    return registry;
  }

  // Exact global maximum thread popularity over the corpus.
  double global_bound() const { return global_bound_; }

  // Bound for one (normalized) term: its hot-keyword bound if maintained,
  // else the global bound.
  double TermBound(const std::string& term) const;
  bool IsHotKeyword(const std::string& term) const {
    return hot_bounds_.count(term) > 0;
  }

  // Query-level popularity bound (§VI-B5): AND takes the smallest term
  // bound ("the upper bound popularity of 'Mexican'"), OR the largest.
  // `use_hot_bounds` false reproduces the global-bound-only baseline of
  // Fig. 12.
  double QueryBound(const std::vector<std::string>& terms, bool conjunctive,
                    bool use_hot_bounds) const;

  const std::unordered_map<std::string, double>& hot_bounds() const {
    return hot_bounds_;
  }

 private:
  double global_bound_ = 0.0;
  std::unordered_map<std::string, double> hot_bounds_;
};

}  // namespace tklus

#endif  // TKLUS_CORE_BOUNDS_H_
