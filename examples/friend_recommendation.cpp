// Friend recommendation (§I lists it as a TkLUS application): for a user
// who just moved to a new neighbourhood, recommend nearby users who are
// active and influential about the newcomer's interests, then show the
// social-network evidence (reply/forward edges, Def. 2) behind each
// recommendation.
#include <cstdio>

#include "core/engine.h"
#include "datagen/tweet_generator.h"
#include "social/social_graph.h"

using tklus::GeoPoint;
using tklus::SocialGraph;
using tklus::TkLusEngine;
using tklus::TkLusQuery;
using tklus::UserId;
using tklus::datagen::TweetGenerator;

int main() {
  TweetGenerator::Options gen;
  gen.num_tweets = 30000;
  gen.num_users = 1000;
  gen.num_cities = 6;
  std::printf("generating %zu tweets...\n", gen.num_tweets);
  const auto corpus = TweetGenerator::Generate(gen);

  auto engine = TkLusEngine::Build(corpus.dataset);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  const SocialGraph graph = SocialGraph::Build(corpus.dataset);

  // The newcomer moved near Paris's centre and is into film and concerts.
  const GeoPoint home{48.8566, 2.3522};
  TkLusQuery query;
  query.location = home;
  query.radius_km = 12.0;
  query.keywords = {"film", "concert"};
  query.semantics = tklus::Semantics::kOr;
  query.ranking = tklus::Ranking::kMax;  // favour locally influential users
  query.k = 5;

  auto result = (*engine)->Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nfriend recommendations near Paris for {film, concert}:\n");
  for (const auto& user : result->users) {
    // Social evidence: how many distinct users engaged with them.
    size_t repliers = 0, forwards = 0;
    for (const UserId other : graph.users()) {
      if (graph.HasReplyEdge(other, user.uid)) ++repliers;
      if (graph.HasForwardEdge(other, user.uid)) ++forwards;
    }
    std::printf(
        "  user %-6lld score %.4f — replied to by %zu users, forwarded by "
        "%zu\n",
        static_cast<long long>(user.uid), user.score, repliers, forwards);
  }
  std::printf("\n%zu candidate tweets considered, %zu thread constructions "
              "pruned by the Alg. 5 bound\n",
              result->stats.candidates, result->stats.threads_pruned);
  return 0;
}
