#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/kendall.h"
#include "core/scoring.h"
#include "model/dataset.h"
#include "social/social_graph.h"
#include "social/thread_builder.h"
#include "text/tokenizer.h"

namespace tklus {
namespace {

// --------------------------------------------------------------- scoring

TEST(ScoringTest, DistanceScoreRange) {
  EXPECT_DOUBLE_EQ(DistanceScore(0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(DistanceScore(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(DistanceScore(5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(DistanceScore(15.0, 10.0), 0.0);  // outside -> 0
  EXPECT_DOUBLE_EQ(DistanceScore(1.0, 0.0), 0.0);    // degenerate radius
}

TEST(ScoringTest, DistanceScoreFromPoints) {
  const GeoPoint q{43.68, -79.37};
  EXPECT_DOUBLE_EQ(DistanceScore(q, q, 10.0), 1.0);
  const GeoPoint far{44.68, -79.37};  // ~111 km north
  EXPECT_DOUBLE_EQ(DistanceScore(far, q, 10.0), 0.0);
}

TEST(ScoringTest, KeywordRelevanceDefinition6) {
  ScoringParams params;
  params.n_norm = 40.0;
  // (3 / 40) * popularity 10/3 = 0.25.
  EXPECT_NEAR(KeywordRelevance(3, 10.0 / 3.0, params), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(KeywordRelevance(0, 5.0, params), 0.0);
}

TEST(ScoringTest, UserScoreAlphaMix) {
  ScoringParams params;
  params.alpha = 0.5;
  EXPECT_DOUBLE_EQ(UserScore(0.4, 0.8, params), 0.6);
  params.alpha = 1.0;
  EXPECT_DOUBLE_EQ(UserScore(0.4, 0.8, params), 0.4);
  params.alpha = 0.0;
  EXPECT_DOUBLE_EQ(UserScore(0.4, 0.8, params), 0.8);
}

TEST(ScoringTest, PaperGlobalBoundDefinition11) {
  // sum_{i=2..4} t_m / i with t_m = 12: 6 + 4 + 3 = 13.
  EXPECT_NEAR(PaperGlobalBoundPopularity(12, 4), 13.0, 1e-12);
  EXPECT_DOUBLE_EQ(PaperGlobalBoundPopularity(5, 1), 0.0);
}

TEST(ScoringTest, TweetUpperBoundDominatesAchievable) {
  ScoringParams params;
  const double bound_pop = 7.0;
  for (uint32_t tf = 1; tf <= 5; ++tf) {
    for (const double pop : {0.1, 3.0, 7.0}) {
      for (const double delta : {0.0, 0.5, 1.0}) {
        const double achievable =
            UserScore(KeywordRelevance(tf, pop, params), delta, params);
        EXPECT_LE(achievable,
                  TweetUpperBoundScore(tf, bound_pop, params) + 1e-12);
      }
    }
  }
}

// --------------------------------------------------------------- kendall

TEST(KendallTest, IdenticalRankingsPerfect) {
  EXPECT_DOUBLE_EQ(KendallTauVariant({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(KendallTest, ReversedRankingsNegative) {
  EXPECT_DOUBLE_EQ(KendallTauVariant({1, 2, 3}, {3, 2, 1}), -1.0);
}

TEST(KendallTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(KendallTauVariant({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTauVariant({5}, {5}), 1.0);
}

TEST(KendallTest, PaperExampleDisjointTails) {
  // §VI-B3: rho_b = <A,B,C>, rho_d = <B,D,E>; extended to
  // <A,B,C,D,E> vs <B,D,E,A,C> with tied ranks for added users.
  // A=1,B=2,C=3,D=4,E=5.
  const double tau = KendallTauVariant({1, 2, 3}, {2, 4, 5});
  // Universe of 5 -> 10 pairs. Enumerate by hand:
  // ranks_a: A0 B1 C2 D3 E3 ; ranks_b: B0 D1 E2 A3 C3.
  // AB: a:A<B, b:A>B -> discordant. AC: a:<, b: tie -> neither.
  // AD: a:<, b:> -> discordant. AE: a:<, b:> -> discordant.
  // BC: a:<, b:< -> concordant. BD: a:<, b:< -> concordant.
  // BE: a:<, b:< -> concordant. CD: a:<, b:> -> discordant.
  // CE: a:<, b:> -> discordant. DE: a: tie, b:< -> neither.
  // cp=3, dp=5 -> tau = -2/10 = -0.2.
  EXPECT_NEAR(tau, -0.2, 1e-12);
}

TEST(KendallTest, SymmetricInArguments) {
  const std::vector<UserId> a = {1, 2, 3, 4};
  const std::vector<UserId> b = {2, 1, 5, 3};
  EXPECT_NEAR(KendallTauVariant(a, b), KendallTauVariant(b, a), 1e-12);
}

TEST(KendallTest, HighOverlapHighTau) {
  // One swap in a top-10: tau stays near 1.
  const std::vector<UserId> a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<UserId> b = {1, 2, 4, 3, 5, 6, 7, 8, 9, 10};
  EXPECT_GT(KendallTauVariant(a, b), 0.9);
}

TEST(KendallTest, BoundedByOne) {
  const std::vector<UserId> a = {1, 2, 3, 4, 5};
  const std::vector<UserId> b = {9, 8, 7, 6, 5};
  const double tau = KendallTauVariant(a, b);
  EXPECT_GE(tau, -1.0);
  EXPECT_LE(tau, 1.0);
}

// --------------------------------------------------------------- bounds

Post MakePost(TweetId sid, UserId uid, const std::string& text,
              TweetId rsid = kNoId, UserId ruid = kNoId) {
  Post p;
  p.sid = sid;
  p.uid = uid;
  p.text = text;
  p.rsid = rsid;
  p.ruid = ruid;
  return p;
}

Dataset BoundsDataset() {
  Dataset ds;
  // "hotel" thread: root 1 with 4 replies -> popularity 4/2 = 2.
  ds.Add(MakePost(1, 1, "grand hotel opening"));
  for (TweetId t = 2; t <= 5; ++t) ds.Add(MakePost(t, t, "wow", 1, 1));
  // "pizza" thread: root 10 with 2 replies and 2 at level 3 ->
  // 2/2 + 2/3 = 5/3.
  ds.Add(MakePost(10, 10, "pizza party"));
  ds.Add(MakePost(11, 11, "yum", 10, 10));
  ds.Add(MakePost(12, 12, "yes", 10, 10));
  ds.Add(MakePost(13, 13, "ok", 11, 11));
  ds.Add(MakePost(14, 14, "ok", 12, 12));
  // Lone "cafe" tweet: popularity epsilon.
  ds.Add(MakePost(20, 20, "cute cafe corner"));
  return ds;
}

TEST(BoundsTest, GlobalBoundIsExactMax) {
  const Dataset ds = BoundsDataset();
  const SocialGraph graph = SocialGraph::Build(ds);
  UpperBoundRegistry::Options opts;
  opts.num_hot_keywords = 2;
  const UpperBoundRegistry registry =
      UpperBoundRegistry::Build(ds, graph, Tokenizer(), opts);
  EXPECT_NEAR(registry.global_bound(), 2.0, 1e-12);  // hotel thread
}

TEST(BoundsTest, HotKeywordBoundsTighter) {
  const Dataset ds = BoundsDataset();
  const SocialGraph graph = SocialGraph::Build(ds);
  UpperBoundRegistry::Options opts;
  opts.num_hot_keywords = 30;  // cover all terms in this tiny corpus
  const UpperBoundRegistry registry =
      UpperBoundRegistry::Build(ds, graph, Tokenizer(), opts);
  EXPECT_NEAR(registry.TermBound("pizza"), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(registry.TermBound("hotel"), 2.0, 1e-12);
  EXPECT_NEAR(registry.TermBound("cafe"), 0.1, 1e-12);  // epsilon singleton
  // Unknown term falls back to the global bound.
  EXPECT_NEAR(registry.TermBound("sushi"), 2.0, 1e-12);
}

TEST(BoundsTest, QueryBoundSemantics) {
  const Dataset ds = BoundsDataset();
  const SocialGraph graph = SocialGraph::Build(ds);
  UpperBoundRegistry::Options opts;
  opts.num_hot_keywords = 30;
  const UpperBoundRegistry registry =
      UpperBoundRegistry::Build(ds, graph, Tokenizer(), opts);
  const std::vector<std::string> terms = {"hotel", "pizza"};
  // AND takes the min bound, OR the max (§VI-B5).
  EXPECT_NEAR(registry.QueryBound(terms, /*conjunctive=*/true, true),
              5.0 / 3.0, 1e-12);
  EXPECT_NEAR(registry.QueryBound(terms, /*conjunctive=*/false, true), 2.0,
              1e-12);
  // Disabling hot bounds falls back to global.
  EXPECT_NEAR(registry.QueryBound(terms, true, false), 2.0, 1e-12);
}

TEST(BoundsTest, QueryWithoutHotKeywordUsesGlobal) {
  const Dataset ds = BoundsDataset();
  const SocialGraph graph = SocialGraph::Build(ds);
  UpperBoundRegistry::Options opts;
  opts.num_hot_keywords = 1;  // only the most frequent term is hot
  const UpperBoundRegistry registry =
      UpperBoundRegistry::Build(ds, graph, Tokenizer(), opts);
  // "cafe" is not hot here -> global bound.
  EXPECT_NEAR(registry.QueryBound({"cafe"}, false, true),
              registry.global_bound(), 1e-12);
}

TEST(BoundsTest, BoundDominatesEveryThread) {
  // Property: for every tweet, its popularity <= TermBound(term) for each
  // of its terms, and <= global bound.
  const Dataset ds = BoundsDataset();
  const SocialGraph graph = SocialGraph::Build(ds);
  UpperBoundRegistry::Options opts;
  opts.num_hot_keywords = 30;
  const Tokenizer tokenizer;
  const UpperBoundRegistry registry =
      UpperBoundRegistry::Build(ds, graph, tokenizer, opts);
  for (const Post& p : ds.posts()) {
    const ThreadShape shape =
        BuildShapeInMemory(graph.children(), p.sid, opts.max_depth);
    const double pop = ThreadPopularity(shape, opts.epsilon);
    EXPECT_LE(pop, registry.global_bound() + 1e-12);
    for (const std::string& term : tokenizer.Tokenize(p.text)) {
      EXPECT_LE(pop, registry.TermBound(term) + 1e-12)
          << "term " << term << " tweet " << p.sid;
    }
  }
}

}  // namespace
}  // namespace tklus
