# Empty dependencies file for tklus_social.
# This may be replaced when dependencies are built.
