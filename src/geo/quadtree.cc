#include "geo/quadtree.h"

#include <algorithm>

#include "geo/distance.h"

namespace tklus {

struct Quadtree::Node {
  BoundingBox box;
  int depth = 0;
  std::vector<Entry> entries;                    // leaf payload
  std::unique_ptr<Node> children[4];             // null for leaves
  bool is_leaf() const { return children[0] == nullptr; }
};

Quadtree::Quadtree(BoundingBox bounds, int capacity, int max_depth)
    : root_(std::make_unique<Node>()),
      bounds_(bounds),
      capacity_(std::max(1, capacity)),
      max_depth_(std::max(1, max_depth)) {
  root_->box = bounds_;
}

Quadtree::~Quadtree() = default;

namespace {

// Quadrant index for a point in `box`: bit 1 = east half, bit 0 = south
// half. (The paper's 2-bit codes are an equivalent labelling.)
int QuadrantOf(const BoundingBox& box, const GeoPoint& p) {
  const GeoPoint c = box.Center();
  const int east = p.lon >= c.lon ? 1 : 0;
  const int south = p.lat < c.lat ? 1 : 0;
  return (east << 1) | south;
}

BoundingBox QuadrantBox(const BoundingBox& box, int quadrant) {
  const GeoPoint c = box.Center();
  BoundingBox q = box;
  if (quadrant & 2) {
    q.min_lon = c.lon;
  } else {
    q.max_lon = c.lon;
  }
  if (quadrant & 1) {
    q.max_lat = c.lat;
  } else {
    q.min_lat = c.lat;
  }
  return q;
}

}  // namespace

void Quadtree::Insert(const GeoPoint& p, uint64_t id) {
  const GeoPoint clamped = bounds_.Clamp(p);
  Node* node = root_.get();
  while (!node->is_leaf()) {
    node = node->children[QuadrantOf(node->box, clamped)].get();
  }
  node->entries.push_back(Entry{clamped, id});
  ++size_;

  // Split if over capacity and depth allows.
  while (node->is_leaf() &&
         static_cast<int>(node->entries.size()) > capacity_ &&
         node->depth < max_depth_) {
    for (int q = 0; q < 4; ++q) {
      node->children[q] = std::make_unique<Node>();
      node->children[q]->box = QuadrantBox(node->box, q);
      node->children[q]->depth = node->depth + 1;
    }
    for (const Entry& e : node->entries) {
      node->children[QuadrantOf(node->box, e.point)]->entries.push_back(e);
    }
    node->entries.clear();
    node->entries.shrink_to_fit();
    // If every point landed in one child, that child may itself need a
    // split; descend and repeat.
    Node* overfull = nullptr;
    for (int q = 0; q < 4; ++q) {
      if (static_cast<int>(node->children[q]->entries.size()) > capacity_) {
        overfull = node->children[q].get();
        break;
      }
    }
    if (overfull == nullptr) break;
    node = overfull;
  }
}

std::vector<Quadtree::Entry> Quadtree::RangeQuery(const GeoPoint& center,
                                                  double radius_km) const {
  std::vector<Entry> out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (MinDistanceKm(node->box, center) > radius_km) continue;
    if (node->is_leaf()) {
      for (const Entry& e : node->entries) {
        if (EuclideanKm(e.point, center) <= radius_km) out.push_back(e);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return out;
}

std::vector<Quadtree::Entry> Quadtree::BoxQuery(const BoundingBox& box) const {
  std::vector<Entry> out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.Intersects(box)) continue;
    if (node->is_leaf()) {
      for (const Entry& e : node->entries) {
        if (box.Contains(e.point)) out.push_back(e);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return out;
}

int Quadtree::depth() const {
  int max_depth = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, node->depth);
    if (!node->is_leaf()) {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return max_depth;
}

size_t Quadtree::node_count() const {
  size_t count = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    if (!node->is_leaf()) {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return count;
}

}  // namespace tklus
