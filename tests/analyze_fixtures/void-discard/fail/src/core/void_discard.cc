// Fixture: a bare (void) cast on a fallible call must trip
// `void-discard`.
namespace tklus {

Status Flaky();

void Discard() {
  (void)Flaky();  // must fire
}

}  // namespace tklus
