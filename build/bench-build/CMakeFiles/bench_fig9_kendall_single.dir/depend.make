# Empty dependencies file for bench_fig9_kendall_single.
# This may be replaced when dependencies are built.
