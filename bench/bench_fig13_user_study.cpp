// Figure 13: the simulated user study. 30 queries with 1-3 keywords,
// top-5/top-10 results at radii 5/10/15/20 km, judged by 4 noisy judges
// against the generator's planted ground truth (see
// datagen/relevance_oracle.h). Paper: precision 60-80% for radii <= 10 km,
// decreasing with radius; top-5 beats top-10.
#include <cstdio>

#include "bench_util.h"
#include "datagen/relevance_oracle.h"

int main() {
  using namespace tklus;
  bench::Banner("Figure 13 — user study (simulated judges)",
                "precision 60-80% at <= 10 km, decreasing with radius; "
                "top-5 above top-10");
  const auto corpus = bench::MakeCorpus(bench::ScaleFromEnv());
  auto engine = bench::MakeEngine(corpus.dataset);
  datagen::RelevanceOracle oracle(&corpus);

  // "A total of 30 queries with one to three keywords are issued at
  // random": take 10 from each keyword group.
  const auto workload = MakeQueryWorkload(corpus, datagen::WorkloadOptions{});
  std::vector<TkLusQuery> study;
  for (size_t kw = 1; kw <= 3; ++kw) {
    const auto group = datagen::FilterByKeywordCount(workload, kw);
    study.insert(study.end(), group.begin(), group.begin() + 10);
  }

  for (const Ranking ranking : {Ranking::kSum, Ranking::kMax}) {
    std::printf("%s ranking:\n",
                ranking == Ranking::kSum ? "Sum-score" : "Max-score");
    std::printf("%-10s %-16s %-16s\n", "radius km", "precision top-5",
                "precision top-10");
    for (const double r : {5.0, 10.0, 15.0, 20.0}) {
      double precision[2] = {0, 0};
      const int ks[2] = {5, 10};
      for (int i = 0; i < 2; ++i) {
        int counted = 0;
        for (TkLusQuery q : study) {
          q.radius_km = r;
          q.k = ks[i];
          q.ranking = ranking;
          auto result = engine->Query(q);
          if (!result.ok()) return 1;
          if (result->users.empty()) continue;
          precision[i] += oracle.Precision(result->UserIds(), q);
          ++counted;
        }
        precision[i] = counted ? precision[i] / counted : 0.0;
      }
      std::printf("%-10.0f %-16.3f %-16.3f\n", r, precision[0],
                  precision[1]);
    }
    std::printf("\n");
  }
  return 0;
}
